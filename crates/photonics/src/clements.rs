//! MZI-mesh (Clements/Reck) substrate: universal unitary decomposition into
//! adjacent 2×2 rotations.
//!
//! The MZI-ONN baseline [Shen et al., Nature Photonics'17] parametrizes each
//! weight tile as `U·Σ·V` with `U`, `V` realized by triangular/rectangular
//! MZI meshes. Universality rests on the fact that any unitary factors into
//! adjacent-waveguide 2×2 rotations; this module implements that
//! decomposition (Reck-style, via complex Givens elimination) and its exact
//! reconstruction. The robustness experiments (Fig. 4) perturb the rotation
//! phases to model per-MZI phase drift.

use adept_linalg::{CMatrix, C64};

/// One adjacent 2×2 rotation acting on waveguides `(wire, wire+1)`,
/// parametrized by a mixing angle `θ` and a relative phase `φ` — the two
/// programmable phase shifts of an MZI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdjacentRotation {
    /// Upper waveguide index.
    pub wire: usize,
    /// Mixing angle.
    pub theta: f64,
    /// Relative phase.
    pub phi: f64,
}

impl AdjacentRotation {
    /// The 2×2 unitary `[[cosθ, -e^{-jφ}·sinθ], [e^{jφ}·sinθ, cosθ]]`.
    pub fn matrix2(&self) -> [[C64; 2]; 2] {
        let (s, c) = self.theta.sin_cos();
        [
            [C64::new(c, 0.0), -C64::cis(-self.phi) * s],
            [C64::cis(self.phi) * s, C64::new(c, 0.0)],
        ]
    }

    /// Embeds the rotation into an `n×n` identity.
    ///
    /// # Panics
    ///
    /// Panics if `wire + 1 >= n`.
    pub fn embed(&self, n: usize) -> CMatrix {
        assert!(self.wire + 1 < n, "rotation exceeds mesh size");
        let mut m = CMatrix::identity(n);
        let r = self.matrix2();
        let (a, b) = (self.wire, self.wire + 1);
        m.set(a, a, r[0][0]);
        m.set(a, b, r[0][1]);
        m.set(b, a, r[1][0]);
        m.set(b, b, r[1][1]);
        m
    }
}

/// A unitary decomposed into adjacent rotations and a final phase screen:
/// `U = R_1 · R_2 · … · R_m · diag(e^{jδ})`.
#[derive(Debug, Clone)]
pub struct MeshDecomposition {
    /// Mesh size.
    pub n: usize,
    /// Rotations, leftmost factor first.
    pub rotations: Vec<AdjacentRotation>,
    /// Output phase screen (unit-modulus diagonal).
    pub phases: Vec<C64>,
}

impl MeshDecomposition {
    /// Multiplies the factors back into a unitary.
    ///
    /// Each adjacent rotation only touches two rows, so reconstruction runs
    /// in `O(#rotations · n)` rather than via full matrix products — this
    /// is the hot path of the noise-robustness sweeps.
    pub fn reconstruct(&self) -> CMatrix {
        let n = self.n;
        let mut m = CMatrix::from_diag(&self.phases);
        let (re, im) = m.planes_mut();
        for r in self.rotations.iter().rev() {
            let g = r.matrix2();
            let (a, b) = (r.wire, r.wire + 1);
            for j in 0..n {
                let (ta, tb) = (a * n + j, b * n + j);
                let top = C64::new(re[ta], im[ta]);
                let bot = C64::new(re[tb], im[tb]);
                let na = g[0][0] * top + g[0][1] * bot;
                let nb = g[1][0] * top + g[1][1] * bot;
                re[ta] = na.re;
                im[ta] = na.im;
                re[tb] = nb.re;
                im[tb] = nb.im;
            }
        }
        m
    }

    /// Returns a copy with every rotation's `θ` and `φ` perturbed by the
    /// supplied noise sampler (models per-MZI phase drift).
    pub fn perturbed(&self, mut noise: impl FnMut() -> f64) -> MeshDecomposition {
        let rotations = self
            .rotations
            .iter()
            .map(|r| AdjacentRotation {
                wire: r.wire,
                theta: r.theta + noise(),
                phi: r.phi + noise(),
            })
            .collect();
        MeshDecomposition {
            n: self.n,
            rotations,
            phases: self.phases.clone(),
        }
    }
}

/// Decomposes a unitary into adjacent rotations (Reck-style Givens
/// elimination) plus an output phase screen.
///
/// Works column by column, eliminating sub-diagonal entries bottom-up with
/// rotations on adjacent rows; the residue of a unitary with zeroed
/// sub-diagonal is a unit-modulus diagonal.
///
/// The number of rotations is exactly `n(n-1)/2` — the MZI count of a
/// triangular mesh.
///
/// # Panics
///
/// Panics if `u` is not square or not unitary within `1e-8`.
///
/// # Examples
///
/// ```
/// use adept_photonics::clements::decompose;
/// use adept_linalg::CMatrix;
///
/// let u = CMatrix::identity(4);
/// let d = decompose(&u);
/// assert_eq!(d.rotations.len(), 6); // n(n-1)/2
/// assert!(d.reconstruct().fro_dist(&u) < 1e-10);
/// ```
pub fn decompose(u: &CMatrix) -> MeshDecomposition {
    assert_eq!(u.rows(), u.cols(), "decompose expects a square matrix");
    let n = u.rows();
    assert!(
        u.is_unitary(1e-8),
        "decompose expects a unitary matrix (error {})",
        u.unitarity_error()
    );
    let mut w = u.clone();
    // Givens factors applied on the left, in application order.
    let mut applied: Vec<AdjacentRotation> = Vec::with_capacity(n * (n - 1) / 2);
    for col in 0..n.saturating_sub(1) {
        for row in ((col + 1)..n).rev() {
            let x = w.at(row - 1, col);
            let y = w.at(row, col);
            if y.abs() < 1e-300 {
                // Record an identity rotation to keep the mesh shape fixed.
                applied.push(AdjacentRotation {
                    wire: row - 1,
                    theta: 0.0,
                    phi: 0.0,
                });
                continue;
            }
            // Choose θ, φ so that G = [[c, e^{-jφ}s], [-e^{jφ}s, c]]
            // applied to rows (row-1, row) zeroes w[row][col].
            // Write x = |x|e^{jα}, y = |y|e^{jβ}. Rotated bottom entry:
            //   -e^{jφ}s·x + c·y = 0  ⇒  tanθ = |y|/|x|, φ = β - α.
            let theta = y.abs().atan2(x.abs());
            let phi = y.arg() - x.arg();
            let (s, c) = theta.sin_cos();
            let g_top = [C64::new(c, 0.0), C64::cis(-phi) * s];
            let g_bot = [-C64::cis(phi) * s, C64::new(c, 0.0)];
            let (re, im) = w.planes_mut();
            for j in 0..n {
                let (ta, tb) = ((row - 1) * n + j, row * n + j);
                let top = C64::new(re[ta], im[ta]);
                let bot = C64::new(re[tb], im[tb]);
                let na = g_top[0] * top + g_top[1] * bot;
                let nb = g_bot[0] * top + g_bot[1] * bot;
                re[ta] = na.re;
                im[ta] = na.im;
                re[tb] = nb.re;
                im[tb] = nb.im;
            }
            applied.push(AdjacentRotation {
                wire: row - 1,
                theta,
                phi,
            });
        }
    }
    // w is now diagonal (unit modulus). U = G₁ᴴ·G₂ᴴ·…·G_mᴴ·D.
    let phases: Vec<C64> = (0..n).map(|i| w.at(i, i)).collect();
    // Gᴴ for G(θ, φ) is the rotation [[c, -e^{-jφ}s], [e^{jφ}s, c]] — our
    // AdjacentRotation::matrix2 with the same (θ, φ).
    let rotations = applied
        .into_iter()
        .map(|g| AdjacentRotation {
            wire: g.wire,
            theta: g.theta,
            phi: g.phi,
        })
        .collect();
    MeshDecomposition {
        n,
        rotations,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_linalg::Permutation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A Haar-ish random unitary built by composing random adjacent
    /// rotations and phases (sufficient for reconstruction tests).
    fn random_unitary(rng: &mut StdRng, n: usize) -> CMatrix {
        let mut m = CMatrix::from_diag(
            &(0..n)
                .map(|_| C64::cis(rng.gen_range(-3.0..3.0)))
                .collect::<Vec<_>>(),
        );
        for _ in 0..(3 * n * n) {
            let r = AdjacentRotation {
                wire: rng.gen_range(0..n - 1),
                theta: rng.gen_range(-3.0..3.0),
                phi: rng.gen_range(-3.0..3.0),
            };
            m = r.embed(n).matmul(&m);
        }
        m
    }

    #[test]
    fn rotation_embed_is_unitary() {
        let r = AdjacentRotation {
            wire: 1,
            theta: 0.7,
            phi: -1.3,
        };
        assert!(r.embed(4).is_unitary(1e-12));
    }

    #[test]
    fn decompose_identity() {
        let d = decompose(&CMatrix::identity(5));
        assert_eq!(d.rotations.len(), 10);
        assert!(d.rotations.iter().all(|r| r.theta.abs() < 1e-12));
        assert!(d.reconstruct().fro_dist(&CMatrix::identity(5)) < 1e-10);
    }

    #[test]
    fn decompose_reconstructs_random_unitaries() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in [2usize, 3, 5, 8, 16] {
            let u = random_unitary(&mut rng, n);
            let d = decompose(&u);
            assert_eq!(d.rotations.len(), n * (n - 1) / 2, "n={n}");
            let err = d.reconstruct().fro_dist(&u);
            assert!(err < 1e-9, "n={n} err={err}");
        }
    }

    #[test]
    fn decompose_permutation_matrix() {
        // Permutations are unitary; the mesh must reproduce them exactly.
        let mut rng = StdRng::seed_from_u64(23);
        let p = Permutation::random(&mut rng, 6);
        let mut u = CMatrix::zeros(6, 6);
        for (i, &j) in p.as_slice().iter().enumerate() {
            u.set(i, j, C64::ONE);
        }
        let d = decompose(&u);
        assert!(d.reconstruct().fro_dist(&u) < 1e-9);
    }

    #[test]
    fn perturbation_grows_with_noise() {
        let mut rng = StdRng::seed_from_u64(31);
        let u = random_unitary(&mut rng, 8);
        let d = decompose(&u);
        let mut err_small = 0.0;
        let mut err_large = 0.0;
        for seed in 0..5 {
            let mut r1 = StdRng::seed_from_u64(100 + seed);
            let mut r2 = StdRng::seed_from_u64(100 + seed);
            let small = d.perturbed(|| r1.gen_range(-0.02..0.02));
            let large = d.perturbed(|| r2.gen_range(-0.2..0.2));
            err_small += small.reconstruct().fro_dist(&u);
            err_large += large.reconstruct().fro_dist(&u);
        }
        assert!(err_small < err_large, "{err_small} vs {err_large}");
        // Perturbed meshes stay unitary — phase noise never breaks passivity.
        let mut r = StdRng::seed_from_u64(7);
        let noisy = d.perturbed(|| r.gen_range(-0.1..0.1));
        assert!(noisy.reconstruct().is_unitary(1e-9));
    }
}
