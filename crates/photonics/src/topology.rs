//! Block-structured programmable photonic meshes.
//!
//! A mesh of `B` blocks implements the unitary `U = Π_b P_b·T_b·R(Φ_b)`
//! (paper Eq. 2): each block is a phase-shifter column `R`, a directional
//! coupler column `T` and a crossing network `P`. The FFT-ONN baseline and
//! every ADEPT-searched design are instances of this structure; only the
//! phases remain programmable after fabrication.

use crate::cost::DeviceCount;
use crate::devices::{phase_column, DC_50_50_T};
use adept_linalg::{CMatrix, Permutation, C64};
use rand::Rng;

/// One PS→DC→CR block of a [`BlockMeshTopology`].
#[derive(Debug, Clone, PartialEq)]
pub struct MeshBlock {
    /// Offset of the first coupled pair: 0 on odd blocks, 1 on even blocks
    /// in the paper's interleaving convention.
    pub dc_start: usize,
    /// One flag per candidate coupler position `(dc_start + 2i,
    /// dc_start + 2i + 1)`: `true` places a 50:50 coupler, `false` leaves
    /// straight waveguides.
    pub couplers: Vec<bool>,
    /// Crossing-network permutation.
    pub perm: Permutation,
}

impl MeshBlock {
    /// Number of candidate coupler positions for mesh size `k` and offset
    /// `dc_start`.
    pub fn coupler_slots(k: usize, dc_start: usize) -> usize {
        (k - dc_start) / 2
    }

    /// Number of placed couplers.
    pub fn dc_count(&self) -> usize {
        self.couplers.iter().filter(|&&c| c).count()
    }

    /// Complex transfer matrix of the DC column for mesh size `k`.
    ///
    /// # Panics
    ///
    /// Panics if the coupler flags do not fit `k`.
    pub fn coupler_column_matrix(&self, k: usize) -> CMatrix {
        assert_eq!(
            self.couplers.len(),
            Self::coupler_slots(k, self.dc_start),
            "coupler flag count does not fit mesh size {k}"
        );
        let mut m = CMatrix::identity(k);
        let t = DC_50_50_T;
        let kappa = (1.0 - t * t).sqrt();
        for (i, &placed) in self.couplers.iter().enumerate() {
            if !placed {
                continue;
            }
            let a = self.dc_start + 2 * i;
            let b = a + 1;
            m.set(a, a, C64::new(t, 0.0));
            m.set(b, b, C64::new(t, 0.0));
            m.set(a, b, C64::new(0.0, kappa));
            m.set(b, a, C64::new(0.0, kappa));
        }
        m
    }
}

/// A fixed mesh topology: the non-programmable part of a photonic tensor
/// core unitary (couplers and crossings), sized `k`.
///
/// # Examples
///
/// ```
/// use adept_photonics::BlockMeshTopology;
///
/// let fft = BlockMeshTopology::butterfly(8);
/// assert_eq!(fft.blocks().len(), 3); // log2(8) stages per unitary
/// let count = fft.device_count();
/// assert_eq!(count.dc, 12); // full coupler columns
/// assert_eq!(count.cr, 8);  // butterfly crossings
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMeshTopology {
    k: usize,
    blocks: Vec<MeshBlock>,
}

impl BlockMeshTopology {
    /// Wraps validated blocks for a mesh of size `k`.
    ///
    /// # Panics
    ///
    /// Panics if any block's permutation or coupler flags do not fit `k`.
    pub fn new(k: usize, blocks: Vec<MeshBlock>) -> Self {
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.perm.len(), k, "block {i} permutation size mismatch");
            assert!(b.dc_start <= 1, "block {i} dc_start must be 0 or 1");
            assert_eq!(
                b.couplers.len(),
                MeshBlock::coupler_slots(k, b.dc_start),
                "block {i} coupler flags do not fit"
            );
        }
        Self { k, blocks }
    }

    /// Mesh size (number of waveguides).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The blocks, outermost (leftmost factor) first.
    pub fn blocks(&self) -> &[MeshBlock] {
        &self.blocks
    }

    /// A `b`-block mesh with full coupler columns, interleaved offsets and
    /// identity crossings — the natural "no routing" starting design.
    pub fn dense_identity_routing(k: usize, b: usize) -> Self {
        let blocks = (0..b)
            .map(|i| {
                // Paper convention: s_b = 0 on odd blocks (1-indexed), 1 on even.
                let dc_start = if (i + 1) % 2 == 0 { 1 } else { 0 };
                MeshBlock {
                    dc_start,
                    couplers: vec![true; MeshBlock::coupler_slots(k, dc_start)],
                    perm: Permutation::identity(k),
                }
            })
            .collect();
        Self::new(k, blocks)
    }

    /// A random topology: random coupler placements and random crossings.
    /// Useful as a search-space sample and for tests.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, k: usize, b: usize) -> Self {
        let blocks = (0..b)
            .map(|i| {
                let dc_start = if (i + 1) % 2 == 0 { 1 } else { 0 };
                let slots = MeshBlock::coupler_slots(k, dc_start);
                MeshBlock {
                    dc_start,
                    couplers: (0..slots).map(|_| rng.gen_bool(0.5)).collect(),
                    perm: Permutation::random(rng, k),
                }
            })
            .collect();
        Self::new(k, blocks)
    }

    /// The FFT-ONN butterfly topology of `log2(k)` stages (see
    /// [`crate::butterfly`]).
    ///
    /// # Panics
    ///
    /// Panics unless `k` is a power of two of at least 2.
    pub fn butterfly(k: usize) -> Self {
        crate::butterfly::butterfly_topology(k)
    }

    /// Builds the unitary `Π_b P_b·T_b·R(Φ_b)` from one phase column per
    /// block.
    ///
    /// # Panics
    ///
    /// Panics unless `phases` holds `blocks().len()` columns of `k` phases.
    pub fn unitary(&self, phases: &[Vec<f64>]) -> CMatrix {
        assert_eq!(
            phases.len(),
            self.blocks.len(),
            "one phase column per block"
        );
        let mut m = CMatrix::identity(self.k);
        // Rightmost factor first: iterate blocks from last to first,
        // multiplying on the left.
        for (block, phi) in self.blocks.iter().zip(phases).rev() {
            assert_eq!(phi.len(), self.k, "phase column must have k entries");
            let r = phase_column(phi);
            let t = block.coupler_column_matrix(self.k);
            let p = crate::devices::crossing_matrix(&block.perm);
            m = p.matmul(&t).matmul(&r).matmul(&m);
        }
        m
    }

    /// Device count of this mesh (a single unitary, not a full PTC).
    pub fn device_count(&self) -> DeviceCount {
        let mut c = DeviceCount {
            ps: self.k * self.blocks.len(),
            dc: 0,
            cr: 0,
            blocks: self.blocks.len(),
        };
        for b in &self.blocks {
            c.dc += b.dc_count();
            c.cr += b.perm.crossing_count();
        }
        c
    }

    /// Device count of a full PTC built from this topology for `U` and a
    /// topology `v` for `V` (paper tables count both unitaries).
    pub fn ptc_device_count(&self, v: &BlockMeshTopology) -> DeviceCount {
        self.device_count() + v.device_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = BlockMeshTopology::random(&mut rng, 8, 6);
        let phases: Vec<Vec<f64>> = (0..6)
            .map(|_| (0..8).map(|_| rng.gen_range(-3.0..3.0)).collect())
            .collect();
        let u = topo.unitary(&phases);
        assert!(u.is_unitary(1e-10), "error {}", u.unitarity_error());
    }

    #[test]
    fn zero_phases_dense_identity_routing_couples_pairs() {
        let topo = BlockMeshTopology::dense_identity_routing(4, 1);
        let u = topo.unitary(&[vec![0.0; 4]]);
        // One full coupler column at offset 0: block-diag of 2 couplers.
        let t = DC_50_50_T;
        assert!((u.at(0, 0).re - t).abs() < 1e-12);
        assert!((u.at(0, 1).im - t).abs() < 1e-12);
        assert!((u.at(2, 3).im - t).abs() < 1e-12);
        assert_eq!(u.at(0, 2), C64::ZERO);
    }

    #[test]
    fn interleaving_offsets_alternate() {
        let topo = BlockMeshTopology::dense_identity_routing(8, 4);
        let starts: Vec<usize> = topo.blocks().iter().map(|b| b.dc_start).collect();
        assert_eq!(starts, vec![0, 1, 0, 1]);
        // Offset-1 columns have (k-1)/2 = 3 slots for k=8.
        assert_eq!(topo.blocks()[1].couplers.len(), 3);
        assert_eq!(topo.blocks()[0].couplers.len(), 4);
    }

    #[test]
    fn device_count_accounting() {
        let mut rng = StdRng::seed_from_u64(7);
        let topo = BlockMeshTopology::random(&mut rng, 8, 5);
        let c = topo.device_count();
        assert_eq!(c.ps, 40);
        assert_eq!(c.blocks, 5);
        let manual_dc: usize = topo.blocks().iter().map(|b| b.dc_count()).sum();
        let manual_cr: usize = topo.blocks().iter().map(|b| b.perm.crossing_count()).sum();
        assert_eq!(c.dc, manual_dc);
        assert_eq!(c.cr, manual_cr);
        // PTC doubles through U + V.
        let ptc = topo.ptc_device_count(&topo);
        assert_eq!(ptc.ps, 80);
    }

    #[test]
    fn composition_order_matches_manual_product() {
        let mut rng = StdRng::seed_from_u64(11);
        let topo = BlockMeshTopology::random(&mut rng, 4, 3);
        let phases: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let u = topo.unitary(&phases);
        // Manual: U = (P1 T1 R1)(P2 T2 R2)(P3 T3 R3).
        let factor = |i: usize| {
            let b = &topo.blocks()[i];
            crate::devices::crossing_matrix(&b.perm)
                .matmul(&b.coupler_column_matrix(4))
                .matmul(&phase_column(&phases[i]))
        };
        let manual = factor(0).matmul(&factor(1)).matmul(&factor(2));
        assert!(u.fro_dist(&manual) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "permutation size mismatch")]
    fn rejects_wrong_perm_size() {
        let block = MeshBlock {
            dc_start: 0,
            couplers: vec![true, true],
            perm: Permutation::identity(3),
        };
        let _ = BlockMeshTopology::new(4, vec![block]);
    }
}
