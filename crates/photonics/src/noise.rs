//! Hardware non-ideality models: Gaussian phase drift (the paper's Fig. 4
//! robustness study) and dead-phase-shifter fault injection (extension).

use rand::Rng;

/// Gaussian phase-drift model: every programmed phase `φ` is realized as
/// `φ + Δφ` with `Δφ ~ N(0, σ²)`.
///
/// # Examples
///
/// ```
/// use adept_photonics::PhaseNoise;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let noise = PhaseNoise::new(0.02);
/// let mut rng = StdRng::seed_from_u64(1);
/// let phases = noise.perturb(&[0.0, 1.0], &mut rng);
/// assert_eq!(phases.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseNoise {
    std: f64,
}

impl PhaseNoise {
    /// Creates a model with standard deviation `std` (radians).
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or not finite.
    pub fn new(std: f64) -> Self {
        assert!(std.is_finite() && std >= 0.0, "std must be finite and ≥ 0");
        Self { std }
    }

    /// The noise standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Samples one drift value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.std == 0.0 {
            return 0.0;
        }
        // Box–Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        self.std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Returns a perturbed copy of a phase column.
    pub fn perturb<R: Rng + ?Sized>(&self, phases: &[f64], rng: &mut R) -> Vec<f64> {
        phases.iter().map(|&p| p + self.sample(rng)).collect()
    }

    /// Perturbs a whole mesh configuration (one column per block).
    pub fn perturb_columns<R: Rng + ?Sized>(
        &self,
        columns: &[Vec<f64>],
        rng: &mut R,
    ) -> Vec<Vec<f64>> {
        columns.iter().map(|c| self.perturb(c, rng)).collect()
    }
}

/// Fault model for failure-injection tests: each phase shifter
/// independently dies (gets stuck at phase 0) with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadShifterFault {
    p: f64,
}

impl DeadShifterFault {
    /// Creates a fault model with per-device death probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        Self { p }
    }

    /// Death probability.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Applies the fault: dead shifters are forced to phase 0.
    ///
    /// Allocating wrapper around [`Self::inject_into`], kept for callers
    /// that want a fresh column.
    pub fn inject<R: Rng + ?Sized>(&self, phases: &[f64], rng: &mut R) -> Vec<f64> {
        let mut out = phases.to_vec();
        self.inject_into(&mut out, rng);
        out
    }

    /// Applies the fault in place — the sweep hot path, which reuses one
    /// scratch column per mesh instead of allocating per column.
    pub fn inject_into<R: Rng + ?Sized>(&self, phases: &mut [f64], rng: &mut R) {
        for p in phases {
            if rng.gen_bool(self.p) {
                *p = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_noise_is_identity() {
        let noise = PhaseNoise::new(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let phases = vec![0.3, -1.2, 2.0];
        assert_eq!(noise.perturb(&phases, &mut rng), phases);
    }

    #[test]
    fn noise_statistics() {
        let noise = PhaseNoise::new(0.05);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20000;
        let samples: Vec<f64> = (0..n).map(|_| noise.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 2e-3, "mean {mean}");
        assert!((var.sqrt() - 0.05).abs() < 5e-3, "std {}", var.sqrt());
    }

    #[test]
    fn perturb_columns_shapes() {
        let noise = PhaseNoise::new(0.02);
        let mut rng = StdRng::seed_from_u64(3);
        let cols = vec![vec![0.0; 4], vec![1.0; 4]];
        let out = noise.perturb_columns(&cols, &mut rng);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|c| c.len() == 4));
        assert!(out[0].iter().any(|&x| x != 0.0));
    }

    #[test]
    fn dead_shifter_rates() {
        let fault = DeadShifterFault::new(0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let phases = vec![1.0; 10000];
        let out = fault.inject(&phases, &mut rng);
        let dead = out.iter().filter(|&&x| x == 0.0).count();
        assert!((dead as f64 / 10000.0 - 0.5).abs() < 0.03);
        // p = 0 never kills; p = 1 kills all.
        assert_eq!(DeadShifterFault::new(0.0).inject(&phases, &mut rng), phases);
        assert!(DeadShifterFault::new(1.0)
            .inject(&phases, &mut rng)
            .iter()
            .all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_negative_std() {
        let _ = PhaseNoise::new(-0.1);
    }
}
