//! Composable, seeded hardware-fault scenarios for photonic tensor cores.
//!
//! [`crate::PhaseNoise`] models *dynamic* drift: a fresh Gaussian draw per
//! build, never the same twice. This module models *static* damage — the
//! kind a burn-in test or a field failure leaves behind: a phase shifter
//! whose heater died, a coupler stuck in the bar state, a thermal gradient
//! that offsets a region of the chip, a DAC that can only hit quantized
//! phase levels. Faults are:
//!
//! * **deterministic per seed** — whether a given device is faulted is a
//!   pure function of the scenario seed and the device's *site* (mesh name,
//!   block, wire), never of evaluation order, thread count, or how many
//!   times the mesh is rebuilt;
//! * **per physical device** — a PTC time-multiplexes one physical mesh
//!   across all weight tiles, so a dead shifter is dead for *every* tile
//!   programmed through it (sites do not include a tile index);
//! * **monotone in probability** — each site draws one uniform per fault
//!   slot, and a device is faulted iff that uniform falls below `p`, so the
//!   damage set at `p = 0.1` is a subset of the damage set at `p = 0.2`;
//! * **composable** — a [`FaultScenario`] applies its faults in insertion
//!   order (e.g. thermal drift *then* quantization models a drifted
//!   operating point snapped to DAC levels).
//!
//! Phase-shifter faults act on programmed phases via
//! [`FaultScenario::apply_phase`]; dead couplers act on the (otherwise
//! fixed) topology via [`FaultScenario::faulted_topology`], replacing the
//! coupler with straight waveguides — the bar state — which keeps the mesh
//! unitary (passive hardware cannot amplify, faulted or not).
//!
//! ```
//! use adept_photonics::{FaultKind, FaultScenario};
//!
//! let scenario = FaultScenario::new(7)
//!     .with(FaultKind::DeadShifter { p: 0.1 })
//!     .with(FaultKind::ThermalDrift { std: 0.01 });
//! let site = FaultScenario::shifter_site("conv1.u0", 2, 5);
//! // Same site, same scenario: always the same realized phase.
//! assert_eq!(scenario.apply_phase(site, 1.0), scenario.apply_phase(site, 1.0));
//! ```

use crate::topology::BlockMeshTopology;

/// One kind of hardware fault. Combine several into a [`FaultScenario`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Each phase shifter independently loses its drive with probability
    /// `p`: the realized phase is stuck at 0.
    DeadShifter {
        /// Per-device failure probability in `[0, 1]`.
        p: f64,
    },
    /// Each phase shifter independently sticks at phase `theta` with
    /// probability `p` (e.g. a heater latched at full drive).
    StuckShifter {
        /// Per-device failure probability in `[0, 1]`.
        p: f64,
        /// The phase (radians) a stuck device is pinned to.
        theta: f64,
    },
    /// Each directional coupler independently degrades to straight
    /// waveguides (bar state) with probability `p`. Acts on the topology,
    /// not on phases; the mesh stays unitary.
    DeadCoupler {
        /// Per-device failure probability in `[0, 1]`.
        p: f64,
    },
    /// A frozen thermal gradient: every shifter picks up a fixed offset
    /// drawn once from `N(0, std²)` at its site. Unlike
    /// [`crate::PhaseNoise`] the offset never changes between builds.
    ThermalDrift {
        /// Offset standard deviation (radians), finite and ≥ 0.
        std: f64,
    },
    /// Phase DACs with `bits` bits of resolution: realized phases snap to
    /// the nearest multiple of `2π / 2^bits`.
    PhaseQuantization {
        /// DAC resolution in bits, `1..=52`.
        bits: u32,
    },
}

impl FaultKind {
    fn validate(&self) {
        match *self {
            FaultKind::DeadShifter { p } | FaultKind::DeadCoupler { p } => {
                assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
            }
            FaultKind::StuckShifter { p, theta } => {
                assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
                assert!(theta.is_finite(), "stuck phase must be finite");
            }
            FaultKind::ThermalDrift { std } => {
                assert!(std.is_finite() && std >= 0.0, "std must be finite and ≥ 0");
            }
            FaultKind::PhaseQuantization { bits } => {
                assert!(
                    (1..=52).contains(&bits),
                    "quantization bits must be in 1..=52"
                );
            }
        }
    }

    /// Tag byte folded into the scenario fingerprint.
    fn tag(&self) -> u64 {
        match self {
            FaultKind::DeadShifter { .. } => 1,
            FaultKind::StuckShifter { .. } => 2,
            FaultKind::DeadCoupler { .. } => 3,
            FaultKind::ThermalDrift { .. } => 4,
            FaultKind::PhaseQuantization { .. } => 5,
        }
    }
}

/// A seeded, ordered composition of [`FaultKind`]s.
///
/// The empty scenario (no faults) is the identity on phases and
/// topologies; [`FaultScenario::is_empty`] lets callers skip the fault
/// path entirely so the faults-off tape stays byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    seed: u64,
    faults: Vec<FaultKind>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

impl FaultScenario {
    /// An empty scenario drawing all fault realizations from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends a fault, keeping composition order.
    ///
    /// # Panics
    ///
    /// Panics if the fault's parameters are out of range (probabilities
    /// outside `[0, 1]`, non-finite phases, `std < 0`, `bits ∉ 1..=52`).
    #[must_use]
    pub fn with(mut self, fault: FaultKind) -> Self {
        fault.validate();
        self.faults.push(fault);
        self
    }

    /// The scenario seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The composed faults in application order.
    pub fn faults(&self) -> &[FaultKind] {
        &self.faults
    }

    /// `true` when no faults are composed: the scenario is the identity.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// `true` if any composed fault can remove couplers (changes the
    /// topology, not just phases).
    pub fn has_coupler_faults(&self) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, FaultKind::DeadCoupler { .. }))
    }

    /// A stable 64-bit digest of the scenario (seed + every fault's kind
    /// and parameters). Plans compiled against a scenario record this and
    /// re-freeze their weights when it changes — the in-field
    /// recalibration trigger.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, &self.seed.to_le_bytes());
        for f in &self.faults {
            h = fnv1a(h, &f.tag().to_le_bytes());
            match *f {
                FaultKind::DeadShifter { p } | FaultKind::DeadCoupler { p } => {
                    h = fnv1a(h, &p.to_bits().to_le_bytes());
                }
                FaultKind::StuckShifter { p, theta } => {
                    h = fnv1a(h, &p.to_bits().to_le_bytes());
                    h = fnv1a(h, &theta.to_bits().to_le_bytes());
                }
                FaultKind::ThermalDrift { std } => {
                    h = fnv1a(h, &std.to_bits().to_le_bytes());
                }
                FaultKind::PhaseQuantization { bits } => {
                    h = fnv1a(h, &bits.to_le_bytes());
                }
            }
        }
        h
    }

    /// Site id of the phase shifter on wire `wire` of block `block` of the
    /// mesh named `key` (e.g. the `"conv1.u0"` parameter name of a PTC's
    /// first `U` tile — all tiles share the physical mesh, so use one
    /// canonical name per mesh, not one per tile).
    pub fn shifter_site(key: &str, block: usize, wire: usize) -> u64 {
        Self::site(key, block, wire, 0xA5)
    }

    /// Site id of the coupler in slot `slot` of block `block` of the mesh
    /// named `key`. Disjoint from shifter sites by construction.
    pub fn coupler_site(key: &str, block: usize, slot: usize) -> u64 {
        Self::site(key, block, slot, 0xC3)
    }

    fn site(key: &str, block: usize, index: usize, class: u8) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, key.as_bytes());
        h = fnv1a(h, &[class]);
        h = fnv1a(h, &(block as u64).to_le_bytes());
        fnv1a(h, &(index as u64).to_le_bytes())
    }

    /// One uniform in `[0, 1)` per (site, fault slot, lane), independent of
    /// call order.
    fn uniform(&self, site: u64, slot: usize, lane: u64) -> f64 {
        let mixed = splitmix64(self.seed ^ splitmix64(site))
            ^ (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ lane.wrapping_mul(0xD1B5_4A32_D192_ED03);
        (splitmix64(mixed) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A standard-normal draw per (site, fault slot) via Box–Muller.
    fn gaussian(&self, site: u64, slot: usize) -> f64 {
        let u1 = self.uniform(site, slot, 1).max(f64::EPSILON);
        let u2 = self.uniform(site, slot, 2);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// The phase the hardware realizes when the shifter at `site` is
    /// programmed to `phase`, after applying every composed fault in
    /// order. Coupler faults do not act here.
    pub fn apply_phase(&self, site: u64, phase: f64) -> f64 {
        let mut out = phase;
        for (slot, fault) in self.faults.iter().enumerate() {
            match *fault {
                FaultKind::DeadShifter { p } => {
                    if self.uniform(site, slot, 0) < p {
                        out = 0.0;
                    }
                }
                FaultKind::StuckShifter { p, theta } => {
                    if self.uniform(site, slot, 0) < p {
                        out = theta;
                    }
                }
                FaultKind::ThermalDrift { std } => {
                    out += std * self.gaussian(site, slot);
                }
                FaultKind::PhaseQuantization { bits } => {
                    let step = std::f64::consts::TAU / (1u64 << bits) as f64;
                    out = (out / step).round() * step;
                }
                FaultKind::DeadCoupler { .. } => {}
            }
        }
        out
    }

    /// Whether the coupler at `site` survives every composed coupler
    /// fault.
    pub fn coupler_alive(&self, site: u64) -> bool {
        self.faults
            .iter()
            .enumerate()
            .all(|(slot, fault)| match *fault {
                FaultKind::DeadCoupler { p } => self.uniform(site, slot, 0) >= p,
                _ => true,
            })
    }

    /// The topology the mesh named `key` degrades to: every placed coupler
    /// whose site is dead becomes straight waveguides. Returns a clone
    /// with the same routing; with no coupler faults this is an exact copy.
    pub fn faulted_topology(&self, key: &str, topo: &BlockMeshTopology) -> BlockMeshTopology {
        if !self.has_coupler_faults() {
            return topo.clone();
        }
        let blocks = topo
            .blocks()
            .iter()
            .enumerate()
            .map(|(b, block)| {
                let mut block = block.clone();
                for (slot, placed) in block.couplers.iter_mut().enumerate() {
                    if *placed && !self.coupler_alive(Self::coupler_site(key, b, slot)) {
                        *placed = false;
                    }
                }
                block
            })
            .collect();
        BlockMeshTopology::new(topo.k(), blocks)
    }

    /// Offline helper: applies the scenario's phase faults to one phase
    /// column per block of the mesh named `key` (wire order within each
    /// column). Pairs with [`Self::faulted_topology`] for
    /// `BlockMeshTopology::unitary`-based studies outside the tape.
    pub fn apply_columns(&self, key: &str, columns: &[Vec<f64>]) -> Vec<Vec<f64>> {
        columns
            .iter()
            .enumerate()
            .map(|(b, col)| {
                col.iter()
                    .enumerate()
                    .map(|(w, &phi)| self.apply_phase(Self::shifter_site(key, b, w), phi))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_scenario_is_identity() {
        let s = FaultScenario::new(1);
        assert!(s.is_empty());
        let site = FaultScenario::shifter_site("m.u0", 0, 0);
        assert_eq!(s.apply_phase(site, 1.234), 1.234);
        let topo = BlockMeshTopology::butterfly(8);
        assert_eq!(s.faulted_topology("m.u0", &topo), topo);
    }

    #[test]
    fn dead_shifters_are_deterministic_and_seed_dependent() {
        let s = FaultScenario::new(3).with(FaultKind::DeadShifter { p: 0.5 });
        let site = |w| FaultScenario::shifter_site("m.u0", 0, w);
        let first: Vec<f64> = (0..64).map(|w| s.apply_phase(site(w), 1.0)).collect();
        let again: Vec<f64> = (0..64).map(|w| s.apply_phase(site(w), 1.0)).collect();
        assert_eq!(first, again);
        assert!(first.contains(&0.0));
        assert!(first.contains(&1.0));
        let other = FaultScenario::new(4).with(FaultKind::DeadShifter { p: 0.5 });
        let differ: Vec<f64> = (0..64).map(|w| other.apply_phase(site(w), 1.0)).collect();
        assert_ne!(first, differ);
    }

    #[test]
    fn damage_is_monotone_in_probability() {
        let site = |w| FaultScenario::shifter_site("m.v0", 1, w);
        let lo = FaultScenario::new(9).with(FaultKind::DeadShifter { p: 0.1 });
        let hi = FaultScenario::new(9).with(FaultKind::DeadShifter { p: 0.4 });
        for w in 0..256 {
            if lo.apply_phase(site(w), 1.0) == 0.0 {
                assert_eq!(hi.apply_phase(site(w), 1.0), 0.0, "wire {w} healed");
            }
        }
        let dead = |s: &FaultScenario| {
            (0..256)
                .filter(|&w| s.apply_phase(site(w), 1.0) == 0.0)
                .count()
        };
        assert!(dead(&lo) < dead(&hi));
    }

    #[test]
    fn fault_rates_match_probability() {
        let s = FaultScenario::new(11).with(FaultKind::DeadShifter { p: 0.3 });
        let dead = (0..10_000)
            .filter(|&w| s.apply_phase(FaultScenario::shifter_site("m.u0", 0, w), 1.0) == 0.0)
            .count();
        assert!((dead as f64 / 10_000.0 - 0.3).abs() < 0.02, "rate {dead}");
    }

    #[test]
    fn faults_compose_in_order() {
        let s = FaultScenario::new(5)
            .with(FaultKind::StuckShifter { p: 1.0, theta: 1.0 })
            .with(FaultKind::PhaseQuantization { bits: 2 });
        let site = FaultScenario::shifter_site("m.u0", 0, 0);
        // Stuck at 1.0, then snapped to the nearest multiple of π/2.
        assert!((s.apply_phase(site, 0.2) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        // Reverse order: quantization first, then stuck wins.
        let r = FaultScenario::new(5)
            .with(FaultKind::PhaseQuantization { bits: 2 })
            .with(FaultKind::StuckShifter { p: 1.0, theta: 1.0 });
        assert_eq!(r.apply_phase(site, 0.2), 1.0);
    }

    #[test]
    fn thermal_drift_is_frozen_per_site() {
        let s = FaultScenario::new(13).with(FaultKind::ThermalDrift { std: 0.05 });
        let a = FaultScenario::shifter_site("m.u0", 0, 0);
        let b = FaultScenario::shifter_site("m.u0", 0, 1);
        let da = s.apply_phase(a, 0.0);
        assert_eq!(s.apply_phase(a, 0.0), da, "drift must be static");
        assert_eq!(s.apply_phase(a, 1.0) - 1.0, da, "drift is additive");
        assert_ne!(da, s.apply_phase(b, 0.0), "independent per site");
    }

    #[test]
    fn dead_couplers_keep_mesh_unitary() {
        let s = FaultScenario::new(21).with(FaultKind::DeadCoupler { p: 0.5 });
        let topo = BlockMeshTopology::dense_identity_routing(8, 6);
        let faulted = s.faulted_topology("m.u0", &topo);
        assert!(faulted.device_count().dc < topo.device_count().dc);
        let phases: Vec<Vec<f64>> = (0..6)
            .map(|b| (0..8).map(|w| (b + w) as f64 * 0.3).collect())
            .collect();
        let u = faulted.unitary(&phases);
        assert!(u.is_unitary(1e-10), "error {}", u.unitarity_error());
    }

    #[test]
    fn shifter_and_coupler_sites_are_disjoint() {
        let a = FaultScenario::shifter_site("m.u0", 2, 3);
        let b = FaultScenario::coupler_site("m.u0", 2, 3);
        assert_ne!(a, b);
    }

    #[test]
    fn fingerprint_tracks_scenario_content() {
        let a = FaultScenario::new(1).with(FaultKind::DeadShifter { p: 0.1 });
        let b = FaultScenario::new(1).with(FaultKind::DeadShifter { p: 0.1 });
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            a.fingerprint(),
            FaultScenario::new(2)
                .with(FaultKind::DeadShifter { p: 0.1 })
                .fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            FaultScenario::new(1)
                .with(FaultKind::DeadShifter { p: 0.2 })
                .fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            FaultScenario::new(1)
                .with(FaultKind::StuckShifter { p: 0.1, theta: 0.0 })
                .fingerprint()
        );
        assert_ne!(a.fingerprint(), FaultScenario::new(1).fingerprint());
    }

    #[test]
    fn apply_columns_matches_per_site_application() {
        let s = FaultScenario::new(17)
            .with(FaultKind::DeadShifter { p: 0.3 })
            .with(FaultKind::ThermalDrift { std: 0.02 });
        let cols = vec![vec![0.5; 4], vec![-0.25; 4]];
        let out = s.apply_columns("m.v0", &cols);
        for (b, col) in out.iter().enumerate() {
            for (w, &v) in col.iter().enumerate() {
                let site = FaultScenario::shifter_site("m.v0", b, w);
                assert_eq!(v, s.apply_phase(site, cols[b][w]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn rejects_out_of_range_probability() {
        let _ = FaultScenario::new(0).with(FaultKind::DeadShifter { p: 1.5 });
    }

    #[test]
    #[should_panic(expected = "quantization bits")]
    fn rejects_zero_bit_quantization() {
        let _ = FaultScenario::new(0).with(FaultKind::PhaseQuantization { bits: 0 });
    }
}
