//! Property-based tests (proptest) over the workspace's core invariants.

use adept::spl;
use adept_linalg::{polar_orthogonal, svd, Permutation};
use adept_photonics::{BlockMeshTopology, DeviceCount, Pdk};
use adept_tensor::{broadcast_shapes, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn perm_strategy(n: usize) -> impl Strategy<Value = Permutation> {
    Just(n).prop_perturb(move |n, mut rng| {
        let mut image: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            image.swap(i, j);
        }
        Permutation::from_vec(image).expect("shuffle is a bijection")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn crossing_count_invariant_under_inverse(p in perm_strategy(12)) {
        prop_assert_eq!(p.crossing_count(), p.inverse().crossing_count());
    }

    #[test]
    fn compose_with_inverse_is_identity(p in perm_strategy(10)) {
        prop_assert!(p.compose(&p.inverse()).is_identity());
        prop_assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn crossing_count_bounded_by_max_inversions(p in perm_strategy(14)) {
        prop_assert!(p.crossing_count() <= 14 * 13 / 2);
    }

    #[test]
    fn permutation_matrix_round_trip(p in perm_strategy(9)) {
        let m = p.to_matrix();
        let q = Permutation::try_from_matrix(&m, 1e-12).unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn broadcast_is_commutative_in_shape(
        a in proptest::collection::vec(1usize..5, 1..4),
        b in proptest::collection::vec(1usize..5, 1..4),
    ) {
        prop_assert_eq!(broadcast_shapes(&a, &b), broadcast_shapes(&b, &a));
    }

    #[test]
    fn tensor_transpose_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::rand_uniform(&mut rng, &[rows, cols], -2.0, 2.0);
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn cow_mutated_clone_never_aliases_source(
        rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = Tensor::rand_uniform(&mut rng, &[rows, cols], -2.0, 2.0);
        let before = src.as_slice().to_vec();
        let mut cloned = src.clone();
        prop_assert!(src.shares_storage(&cloned), "clones share until written");
        let (i, j) = (rng.gen_range(0..rows), rng.gen_range(0..cols));
        *cloned.at_mut(&[i, j]) += 1.0;
        prop_assert!(!src.shares_storage(&cloned), "write must detach");
        prop_assert_eq!(src.as_slice(), &before[..], "source unchanged");
        // Windowed handles (rows, reshapes) detach the same way.
        let mut row = src.row(rng.gen_range(0..rows));
        row.as_mut_slice()[0] += 1.0;
        prop_assert_eq!(src.as_slice(), &before[..], "row write must not leak");
    }

    #[test]
    fn transposed_views_equal_materialized_transposes(
        rows in 1usize..7, cols in 1usize..7, seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::rand_uniform(&mut rng, &[rows, cols], -2.0, 2.0);
        let view = t.t_view();
        let materialized = t.transpose();
        prop_assert_eq!(view.shape(), materialized.shape());
        prop_assert_eq!(view.materialize(), materialized.clone());
        for i in 0..cols {
            for j in 0..rows {
                prop_assert_eq!(view.at(&[i, j]), materialized.at(&[i, j]));
            }
        }
        // Transposing the view again round-trips to the original, zero-copy.
        let back = view.transpose().materialize();
        prop_assert!(back.shares_storage(&t));
        prop_assert_eq!(back, t);
    }

    #[test]
    fn batched_matmul_matches_looped_bitwise(
        batch in 1usize..5, m in 1usize..5, k in 1usize..5, n in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[batch, m, k], -2.0, 2.0);
        let b = Tensor::rand_uniform(&mut rng, &[batch, k, n], -2.0, 2.0);
        let batched = a.batched_matmul(&b);
        for t in 0..batch {
            // `matmul` lowers to `matmul_into`; equality must be bit-exact.
            let looped = a.subtensor(t).matmul(&b.subtensor(t));
            prop_assert_eq!(batched.subtensor(t).as_slice(), looped.as_slice());
        }
    }

    #[test]
    fn svd_reconstructs_random_matrices(n in 2usize..8, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[n, n], -3.0, 3.0);
        let d = svd(&a);
        prop_assert!(d.reconstruct().allclose(&a, 1e-8));
        // Singular values are sorted and non-negative.
        for w in d.s.windows(2) {
            prop_assert!(w[0] + 1e-12 >= w[1]);
        }
        prop_assert!(d.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn polar_factor_is_orthogonal(n in 2usize..7, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[n, n], -2.0, 2.0);
        let q = polar_orthogonal(&a);
        let qtq = q.transpose().matmul(&q);
        prop_assert!(qtq.allclose(&Tensor::eye(n), 1e-8));
    }

    #[test]
    fn spl_always_returns_legal_permutation(n in 3usize..10, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Tensor::rand_uniform(&mut rng, &[n, n], 0.0, 1.0);
        let legal = spl::legalize(&p, &mut rng, 8, 0.05);
        prop_assert_eq!(legal.len(), n);
    }

    #[test]
    fn random_mesh_unitary_is_unitary(k in 2usize..7, b in 1usize..5, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = BlockMeshTopology::random(&mut rng, 2 * k, b);
        let phases: Vec<Vec<f64>> = (0..b)
            .map(|_| (0..2 * k).map(|_| {
                use rand::Rng;
                rng.gen_range(-3.0..3.0)
            }).collect())
            .collect();
        let u = topo.unitary(&phases);
        prop_assert!(u.is_unitary(1e-8));
    }

    #[test]
    fn footprint_is_linear_in_counts(
        ps in 0usize..500, dc in 0usize..300, cr in 0usize..300,
    ) {
        let pdk = Pdk::amf();
        let c1 = DeviceCount::new(ps, dc, cr, 1);
        let c2 = DeviceCount::new(2 * ps, 2 * dc, 2 * cr, 2);
        prop_assert!((c2.footprint_um2(&pdk) - 2.0 * c1.footprint_um2(&pdk)).abs() < 1e-6);
    }

    #[test]
    fn device_count_addition_is_componentwise(
        a in (0usize..100, 0usize..100, 0usize..100, 0usize..10),
        b in (0usize..100, 0usize..100, 0usize..100, 0usize..10),
    ) {
        let x = DeviceCount::new(a.0, a.1, a.2, a.3);
        let y = DeviceCount::new(b.0, b.1, b.2, b.3);
        let s = x + y;
        prop_assert_eq!(s.ps, a.0 + b.0);
        prop_assert_eq!(s.dc, a.1 + b.1);
        prop_assert_eq!(s.cr, a.2 + b.2);
        prop_assert_eq!(s.blocks, a.3 + b.3);
    }
}
