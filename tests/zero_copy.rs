//! Allocation accounting for the zero-copy tensor substrate.
//!
//! These tests pin the acceptance criterion of the COW/view refactor: tile
//! extraction and tile assembly on the PTC hot path must perform **zero
//! full-tensor clones**. A counting global allocator measures the bytes
//! allocated inside each operation; view/descriptor bookkeeping is allowed
//! (small vectors of dims/strides), buffer copies are not.

use adept_tensor::{batched_matmul_into, Tensor, Tile};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    // Per-thread accounting so the parallel test harness (and any GEMM
    // worker threads) can't attribute their allocations to a measurement
    // running on another thread. `const`-initialized Cell has no lazy init
    // and no destructor, so it is safe to touch from inside the allocator.
    static LOCAL_BYTES: Cell<usize> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = LOCAL_BYTES.try_with(|b| b.set(b.get() + layout.size()));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Bytes allocated on this thread while running `f`.
fn bytes_allocated<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = LOCAL_BYTES.with(Cell::get);
    let out = f();
    (LOCAL_BYTES.with(Cell::get) - before, out)
}

#[test]
fn clone_reshape_row_are_not_buffer_copies() {
    let t = Tensor::linspace(0.0, 1.0, 64 * 64).reshape(&[64, 64]);
    let buffer_bytes = 64 * 64 * 8;
    let (b, c) = bytes_allocated(|| t.clone());
    assert!(b < buffer_bytes / 8, "clone allocated {b} bytes");
    assert!(c.shares_storage(&t));
    let (b, r) = bytes_allocated(|| t.reshape(&[4096]));
    assert!(b < buffer_bytes / 8, "reshape allocated {b} bytes");
    assert!(r.shares_storage(&t));
    let (b, row) = bytes_allocated(|| t.row(17));
    assert!(b < buffer_bytes / 8, "row allocated {b} bytes");
    assert!(row.shares_storage(&t));
}

#[test]
fn tile_extraction_of_full_weight_is_zero_copy() {
    // All 64 K=8 tiles of a 64x64 weight: extraction must cost descriptor
    // bookkeeping only — far less than one buffer copy.
    let k = 8;
    let w = Tensor::linspace(-1.0, 1.0, 64 * 64).reshape(&[64, 64]);
    let buffer_bytes = 64 * 64 * 8;
    let (b, views) = bytes_allocated(|| {
        let mut views = Vec::new();
        for r in 0..8 {
            for c in 0..8 {
                views.push(w.block_view(r * k, c * k, k, k));
            }
        }
        views
    });
    assert_eq!(views.len(), 64);
    assert!(views.iter().all(|v| v.shares_storage(&w)));
    assert!(
        b < buffer_bytes,
        "extracting 64 tile views allocated {b} bytes (≥ one full buffer)"
    );
}

#[test]
fn batched_tile_multiply_allocates_nothing_beyond_outputs() {
    // The stage-2 inner-loop shape: multiply every K=8 tile of a 64x64
    // weight by its own 8x8 rhs straight out of the parent buffers.
    let k = 8;
    let w = Tensor::linspace(-1.0, 1.0, 64 * 64).reshape(&[64, 64]);
    let rhs = Tensor::linspace(0.0, 1.0, 64 * k * k).reshape(&[64, k, k]);
    let mut out = Tensor::zeros(&[64, k, k]);
    let a_tiles: Vec<Tile> = (0..64)
        .map(|t| Tile {
            offset: (t / 8) * k * 64 + (t % 8) * k,
            row_stride: 64,
            col_stride: 1,
        })
        .collect();
    let b_tiles: Vec<Tile> = (0..64).map(|t| Tile::contiguous(t * k * k, k)).collect();
    let c_tiles = b_tiles.clone();
    let out_slice = out.as_mut_slice();
    adept_tensor::set_gemm_threads(1);
    let (b, ()) = bytes_allocated(|| {
        // SAFETY: c tiles are the disjoint per-batch slabs of `out`.
        unsafe {
            batched_matmul_into(
                w.as_slice(),
                &a_tiles,
                rhs.as_slice(),
                &b_tiles,
                out_slice,
                &c_tiles,
                k,
                k,
                k,
            );
        }
    });
    adept_tensor::set_gemm_threads(0);
    assert!(
        b < k * k * 8,
        "batched tile sweep allocated {b} bytes (≥ one tile buffer)"
    );
}

#[test]
fn autodiff_value_reads_share_storage() {
    use adept_autodiff::Graph;
    let g = Graph::new();
    let t = Tensor::linspace(0.0, 1.0, 4096).reshape(&[64, 64]);
    let v = g.leaf(t.clone());
    let buffer_bytes = 4096 * 8;
    let (b, val) = bytes_allocated(|| v.value());
    assert!(b < buffer_bytes / 8, "Var::value() allocated {b} bytes");
    assert!(val.shares_storage(&t), "tape reads must be zero-copy");
}

#[test]
fn assemble_backward_hands_out_shared_gradient_windows() {
    // The discriminating check for the batched tile pipeline: gradients
    // flowing back to the individual blocks of an assembled grid must all
    // be windows of ONE [T, kr, kc] gradient buffer (stack's backward is
    // zero-copy slicing). The seed's per-tile implementation produced an
    // independent `g.block(...)` copy per block, which fails this test.
    use adept_autodiff::{assemble_blocks, Graph};
    let g = Graph::new();
    let blocks: Vec<_> = (0..4)
        .map(|i| g.leaf(Tensor::full(&[8, 8], i as f64)))
        .collect();
    let big = assemble_blocks(&blocks, 2, 2);
    let grads = g.backward(big.square().sum());
    let g0 = grads.grad(blocks[0]).unwrap();
    for (i, b) in blocks.iter().enumerate().skip(1) {
        assert!(
            grads.grad(*b).unwrap().shares_storage(g0),
            "block {i} gradient must window the shared stack gradient"
        );
    }
}

#[test]
fn batched_unitary_build_allocates_far_less_than_per_tile() {
    // The batched builder carries one [T, K, K] running product per mesh
    // block instead of T per-tile chains: for a 64x64 K=8 weight its whole
    // forward build must allocate several times less than the per-tile
    // reference and stay within a fixed budget of weight-buffer
    // equivalents (stack buffers + per-block products + the output grid).
    use adept_nn::onn::PtcWeight;
    use adept_nn::{ForwardCtx, ParamStore};
    use adept_photonics::BlockMeshTopology;
    let mut store = ParamStore::new();
    let topo = BlockMeshTopology::butterfly(8);
    let w = PtcWeight::new(&mut store, "w", 64, 64, topo.clone(), topo, 1);
    let graph = adept_autodiff::Graph::new();
    let ctx = ForwardCtx::new(&graph, &store, false, 0);
    adept_tensor::set_gemm_threads(1);
    let _ = w.build(&ctx); // warm up parameter leaves
    let (batched_bytes, built) = bytes_allocated(|| w.build(&ctx));
    assert_eq!(built.shape(), vec![64, 64]);
    let (per_tile_bytes, _) = bytes_allocated(|| w.build_per_tile(&ctx));
    adept_tensor::set_gemm_threads(0);
    let buffer_bytes = 64 * 64 * 8;
    assert!(
        batched_bytes < 80 * buffer_bytes,
        "batched build allocated {batched_bytes} bytes (> 80 weight buffers)"
    );
    assert!(
        3 * batched_bytes < per_tile_bytes,
        "batched ({batched_bytes}B) must allocate <1/3 of per-tile ({per_tile_bytes}B)"
    );
}

#[test]
fn batched_unitary_backward_writes_only_gradient_buffers() {
    // The grid tile-product node's backward pass must run off stride-swapped
    // descriptors: four [T, K, K] gradient buffers plus view bookkeeping,
    // never a materialized transpose or per-tile temporary.
    use adept_autodiff::{batched_tile_product_grid, Graph};
    let (gr, gc, k) = (4usize, 4usize, 8usize);
    let t = gr * gc;
    let stacks: Vec<Tensor> = (0..4)
        .map(|i| Tensor::linspace(-1.0 - i as f64, 1.0 + i as f64, t * k * k).reshape(&[t, k, k]))
        .collect();
    let g = Graph::new();
    let vars: Vec<_> = stacks.iter().map(|s| g.leaf(s.clone())).collect();
    // Ragged output: edge tiles cropped to 30×29.
    let prod = batched_tile_product_grid(vars[0], vars[1], vars[2], vars[3], gr, gc, 30, 29);
    let loss = prod.square().sum();
    adept_tensor::set_gemm_threads(1);
    let (bytes, grads) = bytes_allocated(|| g.backward(loss));
    adept_tensor::set_gemm_threads(0);
    for v in &vars {
        assert_eq!(grads.grad(*v).unwrap().shape(), &[t, k, k]);
    }
    // Budget: the four [T, K, K] gradient stacks and the two elementwise
    // intermediates of square/sum, with slack for descriptor vectors —
    // far below what materialized transposes (4 more stacks per batch
    // item) would cost.
    let stack_bytes = t * k * k * 8;
    assert!(
        bytes < 12 * stack_bytes,
        "grid-product backward allocated {bytes} bytes (> 12 gradient stacks)"
    );
}

#[test]
fn im2col_scratch_reuse_does_not_reallocate() {
    // Once warm, a training step's im2col must reuse the previous step's
    // buffer: the patch matrix was the largest per-step allocation.
    use adept_tensor::{im2col_into, Conv2dGeometry};
    let geom = Conv2dGeometry {
        in_channels: 8,
        in_h: 12,
        in_w: 12,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let x = Tensor::linspace(-1.0, 1.0, 16 * 8 * 12 * 12).reshape(&[16, 8, 12, 12]);
    let mut scratch = Tensor::default();
    im2col_into(&x, &geom, &mut scratch); // warm: allocates once
    let full_bytes = scratch.len() * 8;
    let (bytes, ()) = bytes_allocated(|| im2col_into(&x, &geom, &mut scratch));
    assert!(
        bytes < full_bytes / 8,
        "warm im2col_into allocated {bytes} bytes (≥ 1/8 of the patch matrix)"
    );
}

#[test]
fn ptc_weight_forward_performs_no_per_tile_block_copies() {
    // End-to-end canary: building a 64x64 K=8 PtcWeight (64 tiles) is
    // dominated by the per-tile unitary construction; the tile *pipeline*
    // itself adds only the four [T,K,K] stacks, two batched products and
    // one assembly. The generous budget below is a regression tripwire —
    // reintroducing per-tile extraction/assembly copies (plus the per-tile
    // matmul nodes they imply) blows well past it.
    use adept_nn::onn::PtcWeight;
    use adept_nn::{ForwardCtx, ParamStore};
    use adept_photonics::BlockMeshTopology;
    let mut store = ParamStore::new();
    let topo = BlockMeshTopology::butterfly(8);
    let w = PtcWeight::new(&mut store, "w", 64, 64, topo.clone(), topo, 1);
    let graph = adept_autodiff::Graph::new();
    let ctx = ForwardCtx::new(&graph, &store, false, 0);
    // Warm up once so lazily allocated parameter leaves don't count.
    let _ = w.build(&ctx);
    let buffer_bytes = 64 * 64 * 8;
    let (b, built) = bytes_allocated(|| w.build(&ctx));
    assert_eq!(built.shape(), vec![64, 64]);
    assert!(
        b < 400 * buffer_bytes,
        "PtcWeight::build allocated {b} bytes (> 400 weight buffers)"
    );
}
