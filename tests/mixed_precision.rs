//! Pins for the dual-precision substrate: the f64 plan's bits are frozen
//! against the pre-refactor baseline, f32 plans track f64 within the
//! documented quantization tolerance, and the register-blocked GEMM
//! microkernel is bit-identical to the scalar reference kernel on every
//! shape class (ragged remainders, MR/NR tails, accumulate, alpha) in
//! both dtypes.
//!
//! The bit pin is the refactor's acceptance test: the packed microkernel
//! and the `Element` genericization must not move a single f64 output
//! bit. `EXPECTED_LOGITS_FNV` was captured on the quickstart-scale CNN
//! *before* the microkernel landed and must hold at any thread count.

use adept_infer::{ExecPlan, PlanPrecision};
use adept_nn::models::{proxy_cnn, Backend, InputShape};
use adept_nn::ParamStore;
use adept_tensor::{gemm_micro_into, gemm_scalar_ref_into, set_gemm_threads, Element};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Mutex;

struct CountingAlloc;

thread_local! {
    // Per-thread accounting, same harness as tests/compiled_inference.rs.
    static LOCAL_BYTES: Cell<usize> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = LOCAL_BYTES.try_with(|b| b.set(b.get() + layout.size()));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Bytes allocated on this thread while running `f`.
fn bytes_allocated<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = LOCAL_BYTES.with(Cell::get);
    let out = f();
    (LOCAL_BYTES.with(Cell::get) - before, out)
}

/// Tests mutate the global GEMM thread override; serialize them.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

/// FNV-1a over the logits' bit patterns: any single-bit drift changes it.
fn fnv1a_bits(xs: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in xs {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Deterministic pseudo-input covering positive and negative values.
fn synth_input(elems: usize) -> Vec<f64> {
    (0..elems)
        .map(|i| ((i * 37 + 11) % 101) as f64 / 50.5 - 1.0)
        .collect()
}

/// Quickstart-scale proxy CNN: butterfly(8), 12×12 inputs, 8 channels,
/// 10 classes — the shape `examples/quickstart.rs` retrains.
fn quickstart_model() -> (ParamStore, adept_nn::layers::Sequential) {
    let mut store = ParamStore::new();
    let model = proxy_cnn(
        &mut store,
        InputShape::new(1, 12, 12),
        8,
        10,
        &Backend::butterfly(8),
        42,
    );
    (store, model)
}

/// Logits of a 3-sample batch through a fresh plan at `precision`.
fn quickstart_logits(precision: PlanPrecision) -> Vec<f64> {
    let (store, model) = quickstart_model();
    let mut plan = ExecPlan::compile(&model, &store, &[1, 12, 12], 3, 0, precision).unwrap();
    let input = synth_input(3 * plan.input_elems());
    let mut out = vec![0.0; 3 * plan.output_features()];
    plan.run_batch(&input, 3, &mut out);
    out
}

/// The f64 plan's logits bits on the quickstart CNN, captured at commit
/// 85a66c0 (pre-microkernel, pre-`Element`). The dual-precision refactor
/// must reproduce these bits exactly at every thread count.
const EXPECTED_LOGITS_FNV: u64 = 0xb86a196a5d91e14a;

#[test]
fn f64_plan_bits_pinned_to_pre_refactor_baseline() {
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    for threads in [1usize, 8] {
        set_gemm_threads(threads);
        let got = fnv1a_bits(&quickstart_logits(PlanPrecision::F64));
        assert_eq!(
            got, EXPECTED_LOGITS_FNV,
            "f64 plan logits drifted at {threads} threads: fnv {got:#018x}"
        );
    }
    set_gemm_threads(0);
}

/// Documented f32 quantization tolerance: weights round once at freeze,
/// activations accumulate in f32 through a handful of layers, so logits
/// sit well inside `1e-3 + 1e-3·|x|` of the f64 plan on quickstart-scale
/// models. (`PlanPrecision` docs state the same bound.)
fn f32_close(e: f64, g: f64) -> bool {
    (e - g).abs() <= 1e-3 + 1e-3 * e.abs()
}

#[test]
fn f32_plan_matches_f64_within_tolerance_and_argmax() {
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    set_gemm_threads(1);
    let want = quickstart_logits(PlanPrecision::F64);
    let got = quickstart_logits(PlanPrecision::F32);
    set_gemm_threads(0);
    assert_eq!(want.len(), got.len());
    for (i, (&e, &g)) in want.iter().zip(&got).enumerate() {
        assert!(
            f32_close(e, g),
            "logit {i}: f64 {e} vs f32 {g} outside quantization tolerance"
        );
    }
    // Argmax must agree per sample on the quickstart CNN: its trained-free
    // logit gaps are far wider than the quantization error.
    let classes = 10;
    for s in 0..want.len() / classes {
        let argmax = |xs: &[f64]| {
            xs.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        let (w, g) = (
            argmax(&want[s * classes..(s + 1) * classes]),
            argmax(&got[s * classes..(s + 1) * classes]),
        );
        assert_eq!(w, g, "sample {s}: f64 argmax {w} vs f32 argmax {g}");
    }
}

#[test]
fn f32_warm_path_allocates_nothing() {
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    set_gemm_threads(1);
    let (store, model) = quickstart_model();
    let n = 3;
    let mut plan =
        ExecPlan::compile(&model, &store, &[1, 12, 12], n, 0, PlanPrecision::F32).unwrap();
    let input = synth_input(n * plan.input_elems());
    let mut out = vec![0.0; n * plan.output_features()];
    // Warm twice (slab take/put + pack-scratch growth), then measure: the
    // f64↔f32 conversions at the plan boundary must reuse the slabs.
    plan.run_batch(&input, n, &mut out);
    plan.run_batch(&input, n, &mut out);
    let (bytes, ()) = bytes_allocated(|| plan.run_batch(&input, n, &mut out));
    set_gemm_threads(0);
    assert_eq!(
        bytes, 0,
        "f32 compiled warm path allocated {bytes} bytes (must be allocation-free)"
    );
}

#[test]
fn plan_precision_env_parse_is_strict() {
    // Same contract as ONN_THREADS (`pool::parse_env_count`): explicit
    // values parse case-insensitively, empty/whitespace means "unset".
    assert_eq!(
        PlanPrecision::parse("ONN_INFER_DTYPE", "f32"),
        Some(PlanPrecision::F32)
    );
    assert_eq!(
        PlanPrecision::parse("ONN_INFER_DTYPE", " F64 "),
        Some(PlanPrecision::F64)
    );
    assert_eq!(PlanPrecision::parse("ONN_INFER_DTYPE", ""), None);
    assert_eq!(PlanPrecision::parse("ONN_INFER_DTYPE", "  "), None);
}

#[test]
#[should_panic(expected = "invalid ONN_INFER_DTYPE=\"half\"")]
fn plan_precision_env_parse_panics_on_junk() {
    PlanPrecision::parse("ONN_INFER_DTYPE", "half");
}

/// Asserts the packed microkernel agrees with the scalar reference kernel
/// bit-for-bit on one `(m, k, n, alpha, accumulate)` case, in both dtypes.
fn assert_micro_matches_scalar(m: usize, k: usize, n: usize, alpha: f64, accumulate: bool) {
    fn check<T: Element>(m: usize, k: usize, n: usize, alpha: T, accumulate: bool) {
        let mut rng = StdRng::seed_from_u64((m * 73 + k * 37 + n) as u64);
        let mut fill = |len: usize| -> Vec<T> {
            (0..len)
                .map(|_| {
                    // Mix in exact zeros to exercise the zero-skip branch.
                    if rng.gen_range(0..8) == 0 {
                        T::ZERO
                    } else {
                        T::from_f64(rng.gen_range(-2.0..2.0))
                    }
                })
                .collect()
        };
        let a = fill(m * k);
        let b = fill(k * n);
        let c0 = fill(m * n);
        let mut want = c0.clone();
        let mut got = c0;
        gemm_scalar_ref_into(&a, &b, &mut want, m, k, n, alpha, accumulate);
        gemm_micro_into(&a, &b, &mut got, m, k, n, alpha, accumulate);
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            assert!(
                w == g,
                "[{m}x{k}x{n} alpha={alpha} acc={accumulate} {}] elem {i}: scalar {w:?} vs micro {g:?}",
                T::DTYPE_NAME
            );
        }
    }
    check::<f64>(m, k, n, alpha, accumulate);
    check::<f32>(m, k, n, f32::from_f64(alpha), accumulate);
}

#[test]
fn microkernel_edge_shapes_match_scalar_bitwise() {
    // MR=4 / NR=8 / KC=256 tails and ragged remainders in every dimension,
    // plus degenerate k=0 (pure C scaling / zeroing).
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (4, 8, 8),     // exact register tile
        (5, 8, 9),     // one-row, one-column tails
        (3, 7, 6),     // everything below tile size
        (16, 144, 32), // conv-lowered K
        (13, 257, 17), // KC remainder + ragged m/n
        (4, 0, 8),     // k=0: !ACC must zero, ACC must scale-only
        (65, 33, 12),  // MC boundary + tails
        (7, 300, 515), // NC boundary + ragged everything
    ] {
        for &(alpha, acc) in &[(1.0, false), (1.0, true), (0.5, false), (-2.0, true)] {
            assert_micro_matches_scalar(m, k, n, alpha, acc);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized shapes: micro == scalar bitwise, both dtypes.
    #[test]
    fn microkernel_matches_scalar_on_random_shapes(
        m in 1usize..34,
        k in 0usize..70,
        n in 1usize..40,
        alpha_sel in 0usize..3,
        acc_sel in 0usize..2,
    ) {
        let alpha = [1.0, 0.25, -1.5][alpha_sel];
        assert_micro_matches_scalar(m, k, n, alpha, acc_sel == 1);
    }

    /// Randomized inputs through both plan precisions: logits stay inside
    /// the documented quantization tolerance. (Argmax is asserted only on
    /// the deterministic quickstart fixture above, where the top-2 gap is
    /// known to dominate the f32 error; random logits can tie.)
    #[test]
    fn f32_plan_tracks_f64_on_random_inputs(seed in 0u64..24) {
        let _guard = adept_telemetry::sync::lock_recover(&THREAD_OVERRIDE);
        set_gemm_threads(1);
        let mut store = ParamStore::new();
        let model = proxy_cnn(
            &mut store,
            InputShape::new(1, 8, 8),
            4,
            4,
            &Backend::butterfly(4),
            seed,
        );
        let mut f64_plan =
            ExecPlan::compile(&model, &store, &[1, 8, 8], 1, 0, PlanPrecision::F64).unwrap();
        let mut f32_plan =
            ExecPlan::compile(&model, &store, &[1, 8, 8], 1, 0, PlanPrecision::F32).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let input: Vec<f64> = (0..f64_plan.input_elems())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let mut want = vec![0.0; f64_plan.output_features()];
        let mut got = vec![0.0; f32_plan.output_features()];
        f64_plan.run_batch(&input, 1, &mut want);
        f32_plan.run_batch(&input, 1, &mut got);
        set_gemm_threads(0);
        for (i, (&e, &g)) in want.iter().zip(&got).enumerate() {
            prop_assert!(
                f32_close(e, g),
                "seed {}: logit {} f64 {} vs f32 {} outside tolerance", seed, i, e, g
            );
        }
    }
}
