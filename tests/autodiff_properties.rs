//! Property-based tests of the autodiff engine: analytic gradients of
//! randomly composed graphs must match finite differences.

use adept_autodiff::{check_gradients, Graph, Var};
use adept_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small op vocabulary applied in sequence to a starting matrix.
#[derive(Debug, Clone, Copy)]
enum OpChoice {
    Square,
    Tanh,
    Sigmoid,
    Relu,
    Neg,
    MulSelf,
    AddSelf,
    Transpose,
    SoftmaxRows,
}

fn apply<'g>(op: OpChoice, v: Var<'g>) -> Var<'g> {
    match op {
        OpChoice::Square => v.square(),
        OpChoice::Tanh => v.tanh(),
        OpChoice::Sigmoid => v.sigmoid(),
        OpChoice::Relu => v.relu(),
        OpChoice::Neg => v.neg(),
        OpChoice::MulSelf => v.mul(v),
        OpChoice::AddSelf => v.add(v),
        OpChoice::Transpose => v.transpose().transpose(),
        OpChoice::SoftmaxRows => v.softmax_rows(),
    }
}

fn op_strategy() -> impl Strategy<Value = OpChoice> {
    prop_oneof![
        Just(OpChoice::Square),
        Just(OpChoice::Tanh),
        Just(OpChoice::Sigmoid),
        Just(OpChoice::Relu),
        Just(OpChoice::Neg),
        Just(OpChoice::MulSelf),
        Just(OpChoice::AddSelf),
        Just(OpChoice::Transpose),
        Just(OpChoice::SoftmaxRows),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_op_chains_gradcheck(
        ops in proptest::collection::vec(op_strategy(), 1..6),
        seed in 0u64..10_000,
        rows in 2usize..4,
        cols in 2usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Keep magnitudes moderate and away from relu kinks.
        let x = Tensor::rand_uniform(&mut rng, &[rows, cols], 0.1, 0.9);
        let ops_cl = ops.clone();
        let result = check_gradients(
            move |_, vars| {
                let mut v = vars[0];
                for &op in &ops_cl {
                    v = apply(op, v);
                }
                v.sum()
            },
            &[x],
            1e-6,
            5e-5,
        );
        prop_assert!(result.is_ok(), "ops {:?}: {:?}", ops, result.err());
    }

    #[test]
    fn matmul_chain_gradcheck(
        depth in 1usize..4,
        seed in 0u64..10_000,
        n in 2usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[n, n], -0.8, 0.8);
        let b = Tensor::rand_uniform(&mut rng, &[n, n], -0.8, 0.8);
        let result = check_gradients(
            move |_, vars| {
                let mut m = vars[0];
                for _ in 0..depth {
                    m = m.matmul(vars[1]);
                }
                m.square().sum()
            },
            &[a, b],
            1e-6,
            5e-5,
        );
        prop_assert!(result.is_ok(), "{:?}", result.err());
    }

    #[test]
    fn sum_and_mean_agree(seed in 0u64..10_000, rows in 1usize..5, cols in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(&mut rng, &[rows, cols], -2.0, 2.0);
        let g = Graph::new();
        let v = g.leaf(x.clone());
        let total = v.sum().value().item();
        let mean = v.mean().value().item();
        prop_assert!((total / (rows * cols) as f64 - mean).abs() < 1e-12);
    }

    #[test]
    fn detach_really_stops_gradients(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(&mut rng, &[3], 0.2, 1.5);
        let g = Graph::new();
        let v = g.leaf(x);
        let loss = v.detach().mul(v.detach()).sum();
        let grads = g.backward(loss);
        prop_assert!(grads.grad(v).is_none());
    }
}
