//! Property-based tests of the autodiff engine: analytic gradients of
//! randomly composed graphs must match finite differences.

use adept_autodiff::{check_gradients, Graph, Var};
use adept_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small op vocabulary applied in sequence to a starting matrix.
#[derive(Debug, Clone, Copy)]
enum OpChoice {
    Square,
    Tanh,
    Sigmoid,
    Relu,
    Neg,
    MulSelf,
    AddSelf,
    Transpose,
    SoftmaxRows,
}

fn apply<'g>(op: OpChoice, v: Var<'g>) -> Var<'g> {
    match op {
        OpChoice::Square => v.square(),
        OpChoice::Tanh => v.tanh(),
        OpChoice::Sigmoid => v.sigmoid(),
        OpChoice::Relu => v.relu(),
        OpChoice::Neg => v.neg(),
        OpChoice::MulSelf => v.mul(v),
        OpChoice::AddSelf => v.add(v),
        OpChoice::Transpose => v.transpose().transpose(),
        OpChoice::SoftmaxRows => v.softmax_rows(),
    }
}

fn op_strategy() -> impl Strategy<Value = OpChoice> {
    prop_oneof![
        Just(OpChoice::Square),
        Just(OpChoice::Tanh),
        Just(OpChoice::Sigmoid),
        Just(OpChoice::Relu),
        Just(OpChoice::Neg),
        Just(OpChoice::MulSelf),
        Just(OpChoice::AddSelf),
        Just(OpChoice::Transpose),
        Just(OpChoice::SoftmaxRows),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_op_chains_gradcheck(
        ops in proptest::collection::vec(op_strategy(), 1..6),
        seed in 0u64..10_000,
        rows in 2usize..4,
        cols in 2usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Keep magnitudes moderate and away from relu kinks.
        let x = Tensor::rand_uniform(&mut rng, &[rows, cols], 0.1, 0.9);
        let ops_cl = ops.clone();
        let result = check_gradients(
            move |_, vars| {
                let mut v = vars[0];
                for &op in &ops_cl {
                    v = apply(op, v);
                }
                v.sum()
            },
            &[x],
            1e-6,
            5e-5,
        );
        prop_assert!(result.is_ok(), "ops {:?}: {:?}", ops, result.err());
    }

    #[test]
    fn matmul_chain_gradcheck(
        depth in 1usize..4,
        seed in 0u64..10_000,
        n in 2usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::rand_uniform(&mut rng, &[n, n], -0.8, 0.8);
        let b = Tensor::rand_uniform(&mut rng, &[n, n], -0.8, 0.8);
        let result = check_gradients(
            move |_, vars| {
                let mut m = vars[0];
                for _ in 0..depth {
                    m = m.matmul(vars[1]);
                }
                m.square().sum()
            },
            &[a, b],
            1e-6,
            5e-5,
        );
        prop_assert!(result.is_ok(), "{:?}", result.err());
    }

    #[test]
    fn sum_and_mean_agree(seed in 0u64..10_000, rows in 1usize..5, cols in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(&mut rng, &[rows, cols], -2.0, 2.0);
        let g = Graph::new();
        let v = g.leaf(x.clone());
        let total = v.sum().value().item();
        let mean = v.mean().value().item();
        prop_assert!((total / (rows * cols) as f64 - mean).abs() < 1e-12);
    }

    #[test]
    fn detach_really_stops_gradients(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(&mut rng, &[3], 0.2, 1.5);
        let g = Graph::new();
        let v = g.leaf(x);
        let loss = v.detach().mul(v.detach()).sum();
        let grads = g.backward(loss);
        prop_assert!(grads.grad(v).is_none());
    }

    /// The shared-left factor's adjoint is `matmul_sum_nt` (summed batched
    /// `g·Bᵀ` products): check it in isolation over random shapes —
    /// including the single-column jobs the cropped edge tiles produce.
    #[test]
    fn matmul_sum_nt_adjoint_gradcheck(
        seed in 0u64..10_000,
        t in 1usize..4,
        m in 1usize..4,
        k in 1usize..4,
        n in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shared = Tensor::rand_uniform(&mut rng, &[m, k], -0.9, 0.9);
        let stack = Tensor::rand_uniform(&mut rng, &[t, k, n], -0.9, 0.9);
        let w = Tensor::rand_uniform(&mut rng, &[t, m, n], -1.0, 1.0);
        let result = check_gradients(
            move |g, vars| {
                let weight = g.constant(w.clone());
                vars[0].matmul_bcast_left(vars[1]).mul(weight).sum()
            },
            &[shared, stack],
            1e-6,
            5e-5,
        );
        prop_assert!(result.is_ok(), "{:?}", result.err());
    }
}

/// `batched_permute_rows` composed with the cropped tile-product grid: the
/// inverse-permutation gather of the backward pass must survive the ragged
/// (zero-padded on edge tiles) upstream gradients of a non-multiple-of-K
/// grid.
#[test]
fn batched_permute_rows_gradcheck_under_cropped_grid() {
    use adept_autodiff::{batched_permute_rows, batched_tile_product_grid};
    let (gr, gc, k) = (2usize, 2usize, 4usize);
    let t = gr * gc;
    let mut rng = StdRng::seed_from_u64(77);
    let stacks: Vec<Tensor> = (0..4)
        .map(|_| Tensor::rand_uniform(&mut rng, &[t, k, k], -0.9, 0.9))
        .collect();
    let src = [2usize, 0, 3, 1];
    // 7×6 output on a 2×2 grid of K=4 → bottom/right tiles cropped.
    check_gradients(
        move |_, vars| {
            let us_re = batched_permute_rows(vars[0], &src);
            let v_im = batched_permute_rows(vars[3], &src);
            batched_tile_product_grid(us_re, vars[1], vars[2], v_im, gr, gc, 7, 6)
                .square()
                .sum()
        },
        &stacks,
        1e-6,
        5e-5,
    )
    .unwrap();
}

/// The shared-left broadcast GEMM feeding a cropped grid: its `matmul_sum_nt`
/// adjoint receives the grid product's ragged per-tile gradients.
#[test]
fn bcast_left_adjoint_gradcheck_under_cropped_grid() {
    use adept_autodiff::batched_tile_product_grid;
    let (gr, gc, k) = (2usize, 2usize, 3usize);
    let t = gr * gc;
    let mut rng = StdRng::seed_from_u64(78);
    let shared = Tensor::rand_uniform(&mut rng, &[k, k], -0.9, 0.9);
    let stacks: Vec<Tensor> = (0..4)
        .map(|_| Tensor::rand_uniform(&mut rng, &[t, k, k], -0.9, 0.9))
        .collect();
    let inputs: Vec<Tensor> = std::iter::once(shared).chain(stacks).collect();
    // 5×4 output on a 2×2 grid of K=3 → ragged edge tiles.
    check_gradients(
        move |_, vars| {
            let us_re = vars[0].matmul_bcast_left(vars[1]);
            let v_re = vars[0].matmul_bcast_left(vars[3]);
            batched_tile_product_grid(us_re, vars[2], v_re, vars[4], gr, gc, 5, 4)
                .square()
                .sum()
        },
        &inputs,
        1e-6,
        5e-5,
    )
    .unwrap();
}
