//! Parity and allocation pins for the tape-free compiled inference engine.
//!
//! `adept_infer::ExecPlan` promises two things: its outputs match the tape
//! forward **bit-for-bit** (noise off; and with phase noise on under the
//! same seed, since it freezes the very weights `evaluate_seeded` draws),
//! and its warm path performs **zero heap allocations and zero tape
//! nodes**. Both are pinned here — parity across dense MZI, butterfly,
//! frozen-`SearchOutcome` and ragged (non-multiple-of-K) models at 1 and 8
//! GEMM threads, allocations by the same counting global allocator as
//! `tests/zero_copy.rs` (zero bytes implies zero `Graph`/`Var` nodes: a
//! node allocates).
//!
//! Since the plan's step loop is now traced by `adept_telemetry`, the
//! zero-alloc pin doubles as the **telemetry-off overhead contract**: with
//! `ONN_TELEMETRY` unset (this harness never sets it) every span/counter/
//! histogram call inside the warm path must reduce to one relaxed atomic
//! load and allocate nothing.

use adept::search::{search, AdeptConfig};
use adept_autodiff::Graph;
use adept_infer::{ExecPlan, PlanPrecision};
use adept_nn::layers::{Flatten, Layer, Relu, Sequential};
use adept_nn::models::{proxy_cnn, Backend, InputShape};
use adept_nn::onn::OnnLinear;
use adept_nn::{prebuild_mesh_weights, ForwardCtx, ParamStore};
use adept_photonics::{BlockMeshTopology, Pdk};
use adept_tensor::{set_gemm_threads, Tensor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Mutex;

struct CountingAlloc;

thread_local! {
    // Per-thread accounting so GEMM worker threads and the parallel test
    // harness can't attribute their allocations to a measurement running
    // on another thread (same harness as tests/zero_copy.rs).
    static LOCAL_BYTES: Cell<usize> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = LOCAL_BYTES.try_with(|b| b.set(b.get() + layout.size()));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Bytes allocated on this thread while running `f`.
fn bytes_allocated<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = LOCAL_BYTES.with(Cell::get);
    let out = f();
    (LOCAL_BYTES.with(Cell::get) - before, out)
}

/// Tests mutate the global GEMM thread override; serialize them.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-input covering positive and negative values.
fn synth_input(elems: usize) -> Vec<f64> {
    (0..elems)
        .map(|i| ((i * 37 + 11) % 101) as f64 / 50.5 - 1.0)
        .collect()
}

/// The tape forward `evaluate_seeded`'s first batch would run: throwaway
/// graph, eval-mode ctx under `seed`, full mesh prebuild, then the model.
fn tape_forward(model: &mut dyn Layer, store: &ParamStore, x: Tensor, seed: u64) -> Tensor {
    let graph = Graph::new();
    let ctx = ForwardCtx::new(&graph, store, false, seed);
    prebuild_mesh_weights(&ctx, &model.mesh_weights());
    let x = graph.constant(x);
    model.forward(&ctx, x).value()
}

/// Asserts plan-vs-tape parity for `model` over a 3-sample batch at 1 and
/// 8 GEMM threads. `bitwise` demands exact equality; otherwise ≤ 1e-12
/// (the noisy-model bound from the issue — in practice still exact, since
/// the plan freezes the tape's own weight bits).
fn assert_parity(
    model: &mut Sequential,
    store: &ParamStore,
    sample_shape: &[usize],
    seed: u64,
    bitwise: bool,
) {
    let n = 3;
    let elems: usize = sample_shape.iter().product();
    let input = synth_input(n * elems);
    let mut tape_shape = vec![n];
    tape_shape.extend_from_slice(sample_shape);
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    for threads in [1usize, 8] {
        set_gemm_threads(threads);
        let expected = tape_forward(
            model,
            store,
            Tensor::from_vec(input.clone(), &tape_shape),
            seed,
        );
        let mut plan =
            ExecPlan::compile(model, store, sample_shape, n, seed, PlanPrecision::F64).unwrap();
        let mut got = vec![0.0; n * plan.output_features()];
        plan.run_batch(&input, n, &mut got);
        assert_eq!(expected.as_slice().len(), got.len());
        for (i, (&e, &g)) in expected.as_slice().iter().zip(&got).enumerate() {
            if bitwise {
                assert!(
                    e.to_bits() == g.to_bits(),
                    "threads={threads} elem {i}: tape {e:?} vs plan {g:?}"
                );
            } else {
                assert!(
                    (e - g).abs() <= 1e-12,
                    "threads={threads} elem {i}: tape {e:?} vs plan {g:?}"
                );
            }
        }
        // Single-sample runs must reproduce the batched bits exactly —
        // this is what lets the serving runtime coalesce freely.
        let mut single = vec![0.0; plan.output_features()];
        for s in 0..n {
            plan.run_batch(&input[s * elems..(s + 1) * elems], 1, &mut single);
            assert_eq!(
                &got[s * plan.output_features()..(s + 1) * plan.output_features()],
                &single[..],
                "sample {s} differs between batched and single-sample runs"
            );
        }
    }
    set_gemm_threads(0);
}

#[test]
fn dense_mzi_cnn_matches_tape() {
    let mut store = ParamStore::new();
    let input = InputShape::new(3, 8, 8);
    let mut model = proxy_cnn(&mut store, input, 4, 5, &Backend::Mzi { k: 8 }, 7);
    assert_parity(&mut model, &store, &[3, 8, 8], 21, true);
    // Decompose–perturb–reconstruct phase noise, same seed both sides.
    model.set_phase_noise(0.02);
    assert_parity(&mut model, &store, &[3, 8, 8], 21, false);
}

#[test]
fn butterfly_cnn_matches_tape() {
    let mut store = ParamStore::new();
    let input = InputShape::new(2, 8, 8);
    let mut model = proxy_cnn(&mut store, input, 4, 4, &Backend::butterfly(4), 3);
    assert_parity(&mut model, &store, &[2, 8, 8], 9, true);
    model.set_phase_noise(0.05);
    assert_parity(&mut model, &store, &[2, 8, 8], 9, false);
}

#[test]
fn ragged_shapes_match_tape() {
    // 10→6→3 with K=4 tiles: every matrix dimension is a non-multiple of
    // K, exercising the ragged GemmSpec sweep and partial tiles.
    let mut store = ParamStore::new();
    let topo = BlockMeshTopology::butterfly(4);
    let mut model = Sequential::new();
    model.push(Flatten);
    model.push(OnnLinear::new(
        &mut store,
        "fc1",
        10,
        6,
        topo.clone(),
        topo.clone(),
        11,
    ));
    model.push(Relu);
    model.push(OnnLinear::new(
        &mut store,
        "fc2",
        6,
        3,
        topo.clone(),
        topo,
        12,
    ));
    assert_parity(&mut model, &store, &[10], 33, true);
}

#[test]
fn frozen_search_outcome_matches_tape() {
    let mut cfg = AdeptConfig::quick(8, Pdk::amf(), 240.0, 300.0);
    cfg.epochs = 3;
    cfg.warmup_epochs = 1;
    cfg.spl_epoch = 2;
    cfg.n_train = 32;
    cfg.n_test = 16;
    cfg.image_size = 8;
    cfg.channels = 4;
    cfg.classes = 4;
    cfg.max_blocks_per_side = 4;
    cfg.seed = 5;
    let outcome = search(&cfg);
    let mut store = ParamStore::new();
    let mut model = outcome.frozen_proxy_cnn(&mut store, InputShape::new(1, 8, 8), 4, 4, 17);
    assert_parity(&mut model, &store, &[1, 8, 8], 29, true);
}

#[test]
fn warm_path_allocates_nothing() {
    let _guard = THREAD_OVERRIDE.lock().unwrap();
    // Pin the GEMM to the serial kernel: the pool's spawn boxes closures,
    // which is a real (bounded) allocation but not part of the arithmetic
    // warm path under measurement.
    set_gemm_threads(1);
    let mut store = ParamStore::new();
    let model = proxy_cnn(
        &mut store,
        InputShape::new(2, 8, 8),
        4,
        4,
        &Backend::butterfly(4),
        1,
    );
    let n = 4;
    let mut plan = ExecPlan::compile(&model, &store, &[2, 8, 8], n, 0, PlanPrecision::F64).unwrap();
    let input = synth_input(n * plan.input_elems());
    let mut out = vec![0.0; n * plan.output_features()];
    // The plan's step loop opens a telemetry span per step; this pin only
    // holds on the disabled path, so the contract is two-sided: telemetry
    // must actually be off, and off must cost zero bytes.
    assert!(
        !adept_telemetry::enabled(),
        "test harness must run with ONN_TELEMETRY unset"
    );
    // Warm twice, then measure.
    plan.run_batch(&input, n, &mut out);
    plan.run_batch(&input, n, &mut out);
    let (bytes, ()) = bytes_allocated(|| plan.run_batch(&input, n, &mut out));
    set_gemm_threads(0);
    assert_eq!(
        bytes, 0,
        "compiled warm path allocated {bytes} bytes (must be allocation-free)"
    );
}

/// Disabled telemetry primitives, measured directly: counter bumps,
/// histogram records and span guards (including child derivation) must
/// allocate zero bytes when `ONN_TELEMETRY` is off. This is the pinned
/// "zero overhead when off" guarantee the serving path relies on,
/// independent of what the plan happens to call today.
#[test]
fn disabled_telemetry_allocates_nothing() {
    use adept_telemetry::{Counter, Histogram};
    use std::time::Duration;
    static C: Counter = Counter::stable("test_off.counter");
    static H: Histogram = Histogram::nanos("test_off.hist");
    // Force the one-time env read (which may allocate) before measuring.
    assert!(!adept_telemetry::enabled());
    let (bytes, ()) = bytes_allocated(|| {
        for i in 0..100u64 {
            C.add(i);
            H.record(i);
            H.record_duration(Duration::from_nanos(i));
            let s = adept_telemetry::span("test_off/parent");
            let _c = s.child("leaf");
            let _v = s.child_volatile("leaf2");
        }
    });
    assert_eq!(bytes, 0, "disabled telemetry allocated {bytes} bytes");
    assert_eq!(C.value(), 0, "disabled counter must not accumulate");
}

#[test]
fn refresh_rebuilds_only_on_parameter_change() {
    let mut store = ParamStore::new();
    let model = proxy_cnn(
        &mut store,
        InputShape::new(1, 8, 8),
        4,
        4,
        &Backend::butterfly(4),
        2,
    );
    let mut plan = ExecPlan::compile(&model, &store, &[1, 8, 8], 2, 0, PlanPrecision::F64).unwrap();
    assert!(
        !plan.refresh(&model, &store).unwrap(),
        "clean refresh must no-op"
    );
    // Nudge one parameter: the fingerprint must notice and recompile.
    let id = model.param_ids()[0];
    let delta = Tensor::full(store.value(id).shape(), 1e-3);
    store.apply_delta(id, &delta);
    assert!(
        plan.refresh(&model, &store).unwrap(),
        "changed params must rebuild"
    );
    let input = synth_input(plan.input_elems());
    let mut got = vec![0.0; plan.output_features()];
    plan.run_batch(&input, 1, &mut got);
    let mut fresh =
        ExecPlan::compile(&model, &store, &[1, 8, 8], 2, 0, PlanPrecision::F64).unwrap();
    let mut want = vec![0.0; fresh.output_features()];
    fresh.run_batch(&input, 1, &mut want);
    assert_eq!(got, want, "refreshed plan must match a fresh compile");
}
