//! Integration test: the full ADEPT pipeline — search, export, retrain —
//! produces a constraint-honoring design that learns.

use adept::search::{search, AdeptConfig};
use adept_datasets::{DatasetKind, SyntheticConfig};
use adept_linalg::Permutation;
use adept_nn::models::{proxy_cnn, Backend, InputShape};
use adept_nn::train::{train_classifier, TrainConfig};
use adept_nn::ParamStore;
use adept_photonics::Pdk;

fn tiny_cfg(seed: u64) -> AdeptConfig {
    let mut cfg = AdeptConfig::quick(8, Pdk::amf(), 240.0, 300.0);
    cfg.epochs = 5;
    cfg.warmup_epochs = 1;
    cfg.spl_epoch = 3;
    cfg.n_train = 64;
    cfg.n_test = 32;
    cfg.image_size = 8;
    cfg.channels = 4;
    cfg.classes = 4;
    cfg.max_blocks_per_side = 4;
    cfg.seed = seed;
    cfg
}

#[test]
fn search_is_deterministic_per_seed() {
    let a = search(&tiny_cfg(9));
    let b = search(&tiny_cfg(9));
    assert_eq!(a.design.device_count, b.design.device_count);
    assert_eq!(a.design.topo_u.blocks(), b.design.topo_u.blocks());
    assert_eq!(a.proxy_accuracy, b.proxy_accuracy);
    let c = search(&tiny_cfg(10));
    // A different seed is allowed to find the same block count, but the
    // full history should differ somewhere.
    let same_loss = a
        .history
        .iter()
        .zip(&c.history)
        .all(|(x, y)| x.train_loss == y.train_loss);
    assert!(!same_loss, "different seeds must explore differently");
}

#[test]
fn pipeline_search_export_retrain() {
    let out = search(&tiny_cfg(3));
    // Legal permutations everywhere.
    for topo in [&out.design.topo_u, &out.design.topo_v] {
        for b in topo.blocks() {
            assert!(Permutation::matrix_is_permutation(
                &b.perm.to_matrix(),
                1e-9
            ));
        }
    }
    // Retrain a fresh ONN with the design.
    let backend = Backend::Topology {
        u: out.design.topo_u.clone(),
        v: out.design.topo_v.clone(),
    };
    let data_cfg = SyntheticConfig::new(DatasetKind::MnistLike)
        .with_image_size(8)
        .with_classes(4)
        .with_sizes(128, 64);
    let (train, test) = data_cfg.generate(5);
    let mut store = ParamStore::new();
    let mut model = proxy_cnn(&mut store, InputShape::new(1, 8, 8), 4, 4, &backend, 0);
    let report = train_classifier(
        &mut model,
        &mut store,
        &train,
        &test,
        &TrainConfig {
            epochs: 8,
            batch_size: 16,
            lr: 5e-3,
            seed: 0,
            phase_noise_std: 0.02,
            fault: None,
        },
    );
    assert!(
        report.test_accuracy > 0.45,
        "retrained accuracy {} too close to chance 0.25",
        report.test_accuracy
    );
}

#[test]
fn footprint_window_drives_design_size() {
    // A larger budget must produce a design with a larger footprint.
    let small = search(&tiny_cfg(1));
    let mut big_cfg = tiny_cfg(1);
    big_cfg.f_min_kum2 = 480.0;
    big_cfg.f_max_kum2 = 600.0;
    let big = search(&big_cfg);
    assert!(
        big.design.footprint_kum2 > small.design.footprint_kum2,
        "{} !> {}",
        big.design.footprint_kum2,
        small.design.footprint_kum2
    );
    assert!(big.design.device_count.blocks >= small.design.device_count.blocks);
}
