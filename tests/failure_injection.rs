//! Integration test: hardware-fault injection on photonic meshes — dead
//! phase shifters and severe drift must degrade gracefully (never break
//! unitarity/passivity) and monotonically.

use adept_linalg::CMatrix;
use adept_photonics::{BlockMeshTopology, DeadShifterFault, PhaseNoise};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_phases(rng: &mut StdRng, blocks: usize, k: usize) -> Vec<Vec<f64>> {
    (0..blocks)
        .map(|_| (0..k).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect()
}

#[test]
fn dead_shifters_preserve_unitarity() {
    let mut rng = StdRng::seed_from_u64(1);
    let topo = BlockMeshTopology::random(&mut rng, 8, 5);
    let phases = random_phases(&mut rng, 5, 8);
    for p in [0.0, 0.1, 0.5, 1.0] {
        let fault = DeadShifterFault::new(p);
        let faulty: Vec<Vec<f64>> = phases.iter().map(|c| fault.inject(c, &mut rng)).collect();
        let u = topo.unitary(&faulty);
        assert!(u.is_unitary(1e-9), "p={p}");
    }
}

#[test]
fn fault_severity_orders_transfer_error() {
    // Average transfer-matrix deviation grows with the death probability.
    let mut rng = StdRng::seed_from_u64(2);
    let topo = BlockMeshTopology::butterfly(16);
    let phases = random_phases(&mut rng, topo.blocks().len(), 16);
    let clean = topo.unitary(&phases);
    let mean_err = |p: f64, rng: &mut StdRng| -> f64 {
        let fault = DeadShifterFault::new(p);
        let mut total = 0.0;
        for _ in 0..10 {
            let faulty: Vec<Vec<f64>> = phases.iter().map(|c| fault.inject(c, rng)).collect();
            total += topo.unitary(&faulty).fro_dist(&clean);
        }
        total / 10.0
    };
    let e_small = mean_err(0.05, &mut rng);
    let e_large = mean_err(0.5, &mut rng);
    assert!(e_small > 0.0);
    assert!(
        e_large > 1.5 * e_small,
        "fault severity not ordered: {e_small} vs {e_large}"
    );
}

#[test]
fn drift_and_faults_compose() {
    // Drift on top of dead shifters still yields a physical (unitary) mesh.
    let mut rng = StdRng::seed_from_u64(3);
    let topo = BlockMeshTopology::random(&mut rng, 12, 4);
    let phases = random_phases(&mut rng, 4, 12);
    let noise = PhaseNoise::new(0.1);
    let fault = DeadShifterFault::new(0.2);
    let damaged: Vec<Vec<f64>> = phases
        .iter()
        .map(|c| fault.inject(&noise.perturb(c, &mut rng), &mut rng))
        .collect();
    let u = topo.unitary(&damaged);
    assert!(u.is_unitary(1e-9));
    // Energy conservation: column power stays 1 (passive optics).
    for j in 0..12 {
        let power: f64 = (0..12).map(|i| u.at(i, j).norm_sqr()).sum();
        assert!((power - 1.0).abs() < 1e-9);
    }
}

#[test]
fn mzi_mesh_survives_total_phase_loss() {
    // Even with every programmed phase dead (all-zero), the MZI
    // decomposition of the resulting matrix is still exact.
    let topo = BlockMeshTopology::butterfly(8);
    let zero_phases = vec![vec![0.0; 8]; topo.blocks().len()];
    let u = topo.unitary(&zero_phases);
    let d = adept_photonics::clements::decompose(&u);
    assert!(d.reconstruct().fro_dist(&u) < 1e-9);
    let _ = CMatrix::identity(2); // keep the linalg import exercised
}
