//! Integration test: hardware-fault injection on photonic meshes — dead
//! phase shifters and severe drift must degrade gracefully (never break
//! unitarity/passivity) and monotonically.
//!
//! Two layers of coverage: the original offline checks on raw
//! `BlockMeshTopology::unitary` chains, and the tape-path checks — the
//! same [`FaultScenario`] semantics the `MeshWeight` build applies
//! (site-keyed phase rewrites + bar-state couplers), walked through the
//! batched `[T, B, K]` builder and the full `PtcWeight` build, ending in
//! the fault-aware retraining recovery experiment from ROADMAP open
//! item 4.

use adept_bench::{retrain, retrain_faulted, ModelKind, RetrainSettings};
use adept_datasets::DatasetKind;
use adept_linalg::CMatrix;
use adept_nn::models::Backend;
use adept_nn::onn::{batched_tile_unitary, PtcWeight};
use adept_nn::train::evaluate_faulted;
use adept_nn::{build_mesh_weight, ForwardCtx, ParamStore};
use adept_photonics::{BlockMeshTopology, DeadShifterFault, FaultKind, FaultScenario, PhaseNoise};
use adept_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_phases(rng: &mut StdRng, blocks: usize, k: usize) -> Vec<Vec<f64>> {
    (0..blocks)
        .map(|_| (0..k).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect()
}

#[test]
fn dead_shifters_preserve_unitarity() {
    let mut rng = StdRng::seed_from_u64(1);
    let topo = BlockMeshTopology::random(&mut rng, 8, 5);
    let phases = random_phases(&mut rng, 5, 8);
    for p in [0.0, 0.1, 0.5, 1.0] {
        let fault = DeadShifterFault::new(p);
        let faulty: Vec<Vec<f64>> = phases.iter().map(|c| fault.inject(c, &mut rng)).collect();
        let u = topo.unitary(&faulty);
        assert!(u.is_unitary(1e-9), "p={p}");
    }
}

#[test]
fn fault_severity_orders_transfer_error() {
    // Average transfer-matrix deviation grows with the death probability.
    let mut rng = StdRng::seed_from_u64(2);
    let topo = BlockMeshTopology::butterfly(16);
    let phases = random_phases(&mut rng, topo.blocks().len(), 16);
    let clean = topo.unitary(&phases);
    let mean_err = |p: f64, rng: &mut StdRng| -> f64 {
        let fault = DeadShifterFault::new(p);
        let mut total = 0.0;
        for _ in 0..10 {
            let faulty: Vec<Vec<f64>> = phases.iter().map(|c| fault.inject(c, rng)).collect();
            total += topo.unitary(&faulty).fro_dist(&clean);
        }
        total / 10.0
    };
    let e_small = mean_err(0.05, &mut rng);
    let e_large = mean_err(0.5, &mut rng);
    assert!(e_small > 0.0);
    assert!(
        e_large > 1.5 * e_small,
        "fault severity not ordered: {e_small} vs {e_large}"
    );
}

#[test]
fn drift_and_faults_compose() {
    // Drift on top of dead shifters still yields a physical (unitary) mesh.
    let mut rng = StdRng::seed_from_u64(3);
    let topo = BlockMeshTopology::random(&mut rng, 12, 4);
    let phases = random_phases(&mut rng, 4, 12);
    let noise = PhaseNoise::new(0.1);
    let fault = DeadShifterFault::new(0.2);
    let damaged: Vec<Vec<f64>> = phases
        .iter()
        .map(|c| fault.inject(&noise.perturb(c, &mut rng), &mut rng))
        .collect();
    let u = topo.unitary(&damaged);
    assert!(u.is_unitary(1e-9));
    // Energy conservation: column power stays 1 (passive optics).
    for j in 0..12 {
        let power: f64 = (0..12).map(|i| u.at(i, j).norm_sqr()).sum();
        assert!((power - 1.0).abs() < 1e-9);
    }
}

#[test]
fn mzi_mesh_survives_total_phase_loss() {
    // Even with every programmed phase dead (all-zero), the MZI
    // decomposition of the resulting matrix is still exact.
    let topo = BlockMeshTopology::butterfly(8);
    let zero_phases = vec![vec![0.0; 8]; topo.blocks().len()];
    let u = topo.unitary(&zero_phases);
    let d = adept_photonics::clements::decompose(&u);
    assert!(d.reconstruct().fro_dist(&u) < 1e-9);
    let _ = CMatrix::identity(2); // keep the linalg import exercised
}

/// Applies `scenario` to a `[T, B, K]` phase stack exactly as the staged
/// mesh build does: one physical site per (block, wire), shared by every
/// tile of the time-multiplexed PTC.
fn apply_scenario(scenario: &FaultScenario, key: &str, phases: &Tensor) -> Tensor {
    let dims: Vec<usize> = phases.shape().to_vec();
    let (tiles, blocks, k) = (dims[0], dims[1], dims[2]);
    let mut out = phases.as_slice().to_vec();
    for t in 0..tiles {
        for b in 0..blocks {
            for w in 0..k {
                let i = (t * blocks + b) * k + w;
                out[i] = scenario.apply_phase(FaultScenario::shifter_site(key, b, w), out[i]);
            }
        }
    }
    Tensor::from_vec(out, &dims)
}

#[test]
fn faulted_tape_builds_stay_unitary_and_passive() {
    // A composite scenario (dead + stuck shifters, dead couplers,
    // quantization) walked through the batched tape builder still yields
    // a unitary, passive mesh per tile — faults degrade the programmed
    // transfer function, never the physics.
    let mut rng = StdRng::seed_from_u64(4);
    let topo = BlockMeshTopology::random(&mut rng, 8, 5);
    let scenario = FaultScenario::new(9)
        .with(FaultKind::DeadShifter { p: 0.3 })
        .with(FaultKind::StuckShifter { p: 0.1, theta: 0.7 })
        .with(FaultKind::DeadCoupler { p: 0.2 })
        .with(FaultKind::PhaseQuantization { bits: 6 });
    let tiles = 4;
    let phases = Tensor::rand_uniform(&mut rng, &[tiles, 5, 8], -3.0, 3.0);
    let key = "w.u0";
    let faulted = apply_scenario(&scenario, key, &phases);
    let ftopo = scenario.faulted_topology(key, &topo);
    let store = ParamStore::new();
    let graph = adept_autodiff::Graph::new();
    let ctx = ForwardCtx::new(&graph, &store, false, 0);
    let (re, im) = batched_tile_unitary(&ctx, &ftopo, graph.constant(faulted));
    for t in 0..tiles {
        let u = CMatrix::from_re_im(&re.value().subtensor(t), &im.value().subtensor(t));
        assert!(u.is_unitary(1e-9), "tile {t}: {}", u.unitarity_error());
        for j in 0..8 {
            let power: f64 = (0..8).map(|i| u.at(i, j).norm_sqr()).sum();
            assert!((power - 1.0).abs() < 1e-9, "tile {t} col {j} power {power}");
        }
    }
}

#[test]
fn tape_fault_severity_orders_transfer_error() {
    // Through the batched builder, the deviation from the clean mesh
    // grows with the dead-shifter probability. Scenarios at different p
    // share a seed, so damage nests and the comparison is deterministic.
    let mut rng = StdRng::seed_from_u64(5);
    let topo = BlockMeshTopology::butterfly(16);
    let blocks = topo.blocks().len();
    let tiles = 3;
    let phases = Tensor::rand_uniform(&mut rng, &[tiles, blocks, 16], -3.0, 3.0);
    let key = "w.v0";
    let store = ParamStore::new();
    let graph = adept_autodiff::Graph::new();
    let ctx = ForwardCtx::new(&graph, &store, false, 0);
    let mean_err = |p: f64| -> f64 {
        let scenario = FaultScenario::new(6).with(FaultKind::DeadShifter { p });
        let (re, im) = batched_tile_unitary(&ctx, &topo, graph.constant(phases.clone()));
        let (fre, fim) = batched_tile_unitary(
            &ctx,
            &topo,
            graph.constant(apply_scenario(&scenario, key, &phases)),
        );
        (0..tiles)
            .map(|t| {
                let clean = CMatrix::from_re_im(&re.value().subtensor(t), &im.value().subtensor(t));
                CMatrix::from_re_im(&fre.value().subtensor(t), &fim.value().subtensor(t))
                    .fro_dist(&clean)
            })
            .sum::<f64>()
            / tiles as f64
    };
    let e_small = mean_err(0.05);
    let e_large = mean_err(0.5);
    assert!(e_small > 0.0);
    assert!(
        e_large > 1.5 * e_small,
        "tape fault severity not ordered: {e_small} vs {e_large}"
    );
}

#[test]
fn faulted_mesh_weight_build_is_deterministic_and_distinct() {
    // The real plumbing: a `PtcWeight` built through `ForwardCtx` with a
    // scenario attached must differ from the healthy build, reproduce
    // bit-identically per scenario, and collapse back to the healthy
    // bytes when the scenario is empty.
    let mut store = ParamStore::new();
    let topo = BlockMeshTopology::butterfly(8);
    let w = PtcWeight::new(&mut store, "w", 16, 8, topo.clone(), topo, 5);
    let build = |faults: Option<Arc<FaultScenario>>| -> Vec<f64> {
        let graph = adept_autodiff::Graph::new();
        let ctx = ForwardCtx::with_faults(&graph, &store, false, 0, faults);
        build_mesh_weight(&ctx, &w).value().as_slice().to_vec()
    };
    let healthy = build(None);
    let scenario = Arc::new(FaultScenario::new(11).with(FaultKind::DeadShifter { p: 0.2 }));
    let faulted = build(Some(scenario.clone()));
    assert_ne!(healthy, faulted, "p=0.2 dead shifters must reach the tape");
    assert_eq!(
        faulted,
        build(Some(scenario)),
        "faulted builds must be deterministic"
    );
    assert_eq!(
        healthy,
        build(Some(Arc::new(FaultScenario::new(11)))),
        "an empty scenario must leave the build byte-identical"
    );
}

#[test]
fn fault_aware_retraining_recovers_proxy_cnn() {
    // ROADMAP open item 4's recovery experiment: p=0.1 dead shifters
    // cripple the clean-trained proxy CNN; retraining with the scenario
    // active recovers to within 5 accuracy points of the clean baseline.
    let s = RetrainSettings {
        image_size: 8,
        channels: 4,
        model_scale: 0.3,
        n_train: 192,
        n_test: 96,
        epochs: 4,
        batch_size: 16,
        lr: 4e-3,
        noise_std: 0.02,
    };
    let backend = Backend::butterfly(8);
    let damage = FaultScenario::new(42 ^ 0xFA_017).with(FaultKind::DeadShifter { p: 0.1 });
    let mut clean = retrain(ModelKind::Proxy, DatasetKind::MnistLike, &backend, &s, 42);
    let bundle = &mut clean.model;
    let damaged_pct = 100.0
        * evaluate_faulted(
            &mut bundle.model,
            &bundle.store,
            &bundle.test,
            s.batch_size,
            0,
            &damage,
        );
    let retrained = retrain_faulted(
        ModelKind::Proxy,
        DatasetKind::MnistLike,
        &backend,
        &s,
        42,
        damage,
    );
    assert!(
        damaged_pct < clean.accuracy_pct,
        "p=0.1 dead shifters should hurt: clean {:.2}% vs damaged {damaged_pct:.2}%",
        clean.accuracy_pct
    );
    assert!(
        retrained.accuracy_pct >= clean.accuracy_pct - 5.0,
        "fault-aware retraining must recover to within 5 points: clean {:.2}%, retrained {:.2}%",
        clean.accuracy_pct,
        retrained.accuracy_pct
    );
    assert!(
        retrained.accuracy_pct > damaged_pct,
        "retraining must beat the damaged baseline: {damaged_pct:.2}% vs {:.2}%",
        retrained.accuracy_pct
    );
}
