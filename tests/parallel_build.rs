//! Bit-determinism equivalence suite for the parallel weight-build
//! scheduler.
//!
//! The scheduler (`adept_nn::prebuild_ptc_weights`) records every layer's
//! mesh-unitary walk on a private sub-tape across the shared thread pool
//! and splices the segments back in layer-index order. These tests pin the
//! contract:
//!
//! * the spliced tape — node count, values, noise-stream draws and
//!   per-parameter gradients — is **bit-identical** across thread counts
//!   {1, 2, 8};
//! * the parallel schedule is **bit-identical in values and gradients** to
//!   the legacy serial walk that interleaves each layer's build with its
//!   forward ops;
//! * ragged (non-multiple-of-K) layers with cropped edge tiles and noisy
//!   (variation-aware) builds obey the same guarantees.
//!
//! Everything asserts with `==` on `f64` slices: no tolerances.

use adept_autodiff::Graph;
use adept_nn::layers::{Flatten, Layer, Sequential};
use adept_nn::onn::{OnnConv2d, OnnLinear, PtcWeight};
use adept_nn::{prebuild_mesh_weights, prebuild_ptc_weights, ForwardCtx, ParamStore};
use adept_photonics::BlockMeshTopology;
use adept_tensor::{set_gemm_threads, Conv2dGeometry, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Thread-count overrides are process-global; tests that flip them must
/// not interleave with each other.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    adept_telemetry::sync::lock_recover(&THREAD_OVERRIDE)
}

/// One training-style step: prebuild (optionally), forward, loss, backward.
/// Returns (tape length, loss bits, sorted per-parameter gradients).
fn run_step(
    model: &mut dyn Layer,
    store: &ParamStore,
    x: &Tensor,
    labels: &[usize],
    seed: u64,
    threads: usize,
    prebuild: bool,
) -> (usize, u64, Vec<(String, Tensor)>) {
    set_gemm_threads(threads);
    let graph = Graph::new();
    let ctx = ForwardCtx::new(&graph, store, true, seed);
    if prebuild {
        prebuild_mesh_weights(&ctx, &model.mesh_weights());
    }
    let xv = graph.constant(x.clone());
    let logits = model.forward(&ctx, xv);
    let loss = logits.cross_entropy_logits(labels);
    let loss_bits = loss.value().item().to_bits();
    let tape_len = graph.len();
    let grads = graph.backward(loss);
    let mut per_param: Vec<(String, Tensor)> = ctx
        .into_param_grads(&grads)
        .into_iter()
        .map(|(id, g)| (store.name(id).to_string(), g))
        .collect();
    per_param.sort_by(|a, b| a.0.cmp(&b.0));
    set_gemm_threads(0);
    (tape_len, loss_bits, per_param)
}

fn assert_grads_identical(a: &[(String, Tensor)], b: &[(String, Tensor)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: parameter sets differ");
    for ((name_a, ga), (name_b, gb)) in a.iter().zip(b) {
        assert_eq!(name_a, name_b, "{what}: parameter order");
        assert_eq!(
            ga.as_slice(),
            gb.as_slice(),
            "{what}: gradient of {name_a} diverges"
        );
    }
}

/// A 3-layer ONN MLP with ragged feature counts (cropped edge tiles on
/// every layer for K = 4).
fn ragged_mlp(store: &mut ParamStore, noise: f64) -> Sequential {
    let topo = BlockMeshTopology::butterfly(4);
    let mut model = Sequential::new();
    model.push(Flatten);
    for (i, (inf, outf)) in [(10usize, 9usize), (9, 7), (7, 3)].iter().enumerate() {
        let mut layer = OnnLinear::new(
            store,
            &format!("fc{i}"),
            *inf,
            *outf,
            topo.clone(),
            topo.clone(),
            60 + i as u64,
        );
        layer.weight.phase_noise_std = noise;
        model.push(layer);
    }
    model
}

fn blob_input(n: usize, dim: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Tensor::rand_uniform(&mut rng, &[n, 1, 1, dim], -1.0, 1.0);
    let labels = (0..n).map(|i| i % 3).collect();
    (x, labels)
}

#[test]
fn multi_layer_mlp_bit_identical_across_thread_counts() {
    let _guard = lock();
    let mut store = ParamStore::new();
    let mut model = ragged_mlp(&mut store, 0.0);
    let (x, labels) = blob_input(6, 10, 1);
    let (len_1, loss_1, grads_1) = run_step(&mut model, &store, &x, &labels, 7, 1, true);
    for threads in [2usize, 8] {
        let (len_t, loss_t, grads_t) = run_step(&mut model, &store, &x, &labels, 7, threads, true);
        assert_eq!(len_1, len_t, "tape length at {threads} threads");
        assert_eq!(loss_1, loss_t, "loss bits at {threads} threads");
        assert_grads_identical(&grads_1, &grads_t, &format!("{threads} threads"));
    }
}

#[test]
fn parallel_schedule_matches_legacy_serial_walk() {
    // The legacy walk interleaves each layer's build with its forward ops;
    // the scheduler builds all weights first. Tape layout differs, but
    // values and gradients must match bit for bit.
    let _guard = lock();
    let mut store = ParamStore::new();
    let mut model = ragged_mlp(&mut store, 0.0);
    let (x, labels) = blob_input(5, 10, 2);
    let (_, loss_legacy, grads_legacy) = run_step(&mut model, &store, &x, &labels, 3, 1, false);
    for threads in [1usize, 8] {
        let (_, loss_p, grads_p) = run_step(&mut model, &store, &x, &labels, 3, threads, true);
        assert_eq!(loss_legacy, loss_p, "loss vs legacy at {threads} threads");
        assert_grads_identical(&grads_legacy, &grads_p, "scheduler vs legacy walk");
    }
}

#[test]
fn noisy_builds_draw_identical_streams_at_every_thread_count() {
    // Variation-aware training: phase noise is drawn from the shared RNG in
    // layer order during staging, never on workers — so noisy weights are
    // bit-identical across thread counts AND against the legacy walk.
    let _guard = lock();
    let mut store = ParamStore::new();
    let mut model = ragged_mlp(&mut store, 0.03);
    let (x, labels) = blob_input(4, 10, 3);
    let (_, loss_legacy, grads_legacy) = run_step(&mut model, &store, &x, &labels, 11, 1, false);
    for threads in [1usize, 2, 8] {
        let (_, loss_p, grads_p) = run_step(&mut model, &store, &x, &labels, 11, threads, true);
        assert_eq!(loss_legacy, loss_p, "noisy loss at {threads} threads");
        assert_grads_identical(&grads_legacy, &grads_p, "noisy gradients");
    }
}

#[test]
fn mixed_mzi_and_ptc_noisy_model_is_thread_count_invariant() {
    // MziLinear draws mesh-drift noise from the shared RNG mid-forward.
    // With the scheduler, PTC noise is drawn at staging time instead of
    // interleaved with the Mzi draws — a different (documented) fixed
    // stream than the historical walk, but still drawn entirely on the
    // main thread: every thread count must produce identical bits.
    use adept_nn::onn::MziLinear;
    let _guard = lock();
    let mut store = ParamStore::new();
    let topo = BlockMeshTopology::butterfly(4);
    let mut model = Sequential::new();
    model.push(Flatten);
    let mut onn = OnnLinear::new(&mut store, "fc0", 10, 8, topo.clone(), topo.clone(), 100);
    onn.weight.phase_noise_std = 0.03;
    model.push(onn);
    let mut mzi = MziLinear::new(&mut store, "fc1", 8, 6, 4, 101);
    mzi.phase_noise_std = 0.03;
    model.push(mzi);
    let mut onn2 = OnnLinear::new(&mut store, "fc2", 6, 3, topo.clone(), topo, 102);
    onn2.weight.phase_noise_std = 0.03;
    model.push(onn2);
    let (x, labels) = blob_input(4, 10, 6);
    let (len_1, loss_1, grads_1) = run_step(&mut model, &store, &x, &labels, 13, 1, true);
    for threads in [2usize, 8] {
        let (len_t, loss_t, grads_t) = run_step(&mut model, &store, &x, &labels, 13, threads, true);
        assert_eq!(len_1, len_t, "mixed tape length at {threads} threads");
        assert_eq!(loss_1, loss_t, "mixed loss at {threads} threads");
        assert_grads_identical(&grads_1, &grads_t, &format!("mixed {threads} threads"));
    }
}

#[test]
fn conv_layers_with_cropped_tiles_stay_deterministic() {
    let _guard = lock();
    let mut store = ParamStore::new();
    let geom = Conv2dGeometry {
        in_channels: 1,
        in_h: 8,
        in_w: 8,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    // col_rows = 9 on K=4 → ragged grid; 6 output channels → ragged rows.
    let topo = BlockMeshTopology::butterfly(4);
    let mut model = Sequential::new();
    model.push(OnnConv2d::new(
        &mut store,
        "conv",
        geom,
        6,
        topo.clone(),
        topo.clone(),
        80,
    ));
    model.push(Flatten);
    model.push(OnnLinear::new(
        &mut store,
        "head",
        6 * 8 * 8,
        3,
        topo.clone(),
        topo,
        81,
    ));
    let mut rng = StdRng::seed_from_u64(4);
    let x = Tensor::rand_uniform(&mut rng, &[2, 1, 8, 8], -1.0, 1.0);
    let labels = vec![0usize, 2];
    let (len_1, loss_1, grads_1) = run_step(&mut model, &store, &x, &labels, 9, 1, true);
    let (_, loss_legacy, grads_legacy) = run_step(&mut model, &store, &x, &labels, 9, 1, false);
    assert_eq!(loss_1, loss_legacy, "scheduler vs legacy conv walk");
    assert_grads_identical(&grads_1, &grads_legacy, "conv vs legacy");
    for threads in [2usize, 8] {
        let (len_t, loss_t, grads_t) = run_step(&mut model, &store, &x, &labels, 9, threads, true);
        assert_eq!(len_1, len_t, "conv tape length at {threads} threads");
        assert_eq!(loss_1, loss_t, "conv loss at {threads} threads");
        assert_grads_identical(&grads_1, &grads_t, &format!("conv {threads} threads"));
    }
}

#[test]
fn single_weight_uv_fork_matches_serial_build() {
    // Within one weight the U- and V-mesh walks fork onto the pool; the
    // spliced result must equal the serial build exactly — including when
    // the weight is built directly (no scheduler).
    let _guard = lock();
    let mut store = ParamStore::new();
    let topo = BlockMeshTopology::butterfly(8);
    let layer = OnnLinear::new(&mut store, "fc", 20, 12, topo.clone(), topo, 90);
    let weight: &PtcWeight = &layer.weight;
    let build = |threads: usize, prebuild: bool| -> (usize, Vec<f64>) {
        set_gemm_threads(threads);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, false, 0);
        if prebuild {
            prebuild_ptc_weights(&ctx, &[weight]);
        }
        let w = weight.build(&ctx);
        set_gemm_threads(0);
        (graph.len(), w.value().as_slice().to_vec())
    };
    let (len_direct, val_direct) = build(1, false);
    for (threads, prebuild) in [(2usize, true), (8, true), (8, false)] {
        let (len, val) = build(threads, prebuild);
        assert_eq!(
            len_direct, len,
            "tape ({threads} threads, prebuild={prebuild})"
        );
        assert_eq!(
            val_direct, val,
            "value ({threads} threads, prebuild={prebuild})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random layer stacks / shapes / K / noise / thread counts: the
    /// spliced tape replays to the same loss and per-parameter gradients
    /// as the serial tape, bit for bit.
    #[test]
    fn random_models_replay_bit_identically(
        seed in 0u64..1000,
        n_layers in 1usize..4,
        k_choice in 0usize..2,
        noisy in prop_oneof![Just(false), Just(true)],
        threads in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let _guard = lock();
        let k = [4usize, 8][k_choice];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dims = Vec::with_capacity(n_layers + 1);
        for _ in 0..=n_layers {
            // Random feature counts straddling tile boundaries.
            dims.push(2 + (rand::Rng::gen_range(&mut rng, 0..18usize)));
        }
        let classes = *dims.last().unwrap();
        let topo = BlockMeshTopology::butterfly(k);
        let mut store = ParamStore::new();
        let mut model = Sequential::new();
        model.push(Flatten);
        for i in 0..n_layers {
            let mut layer = OnnLinear::new(
                &mut store,
                &format!("l{i}"),
                dims[i],
                dims[i + 1],
                topo.clone(),
                topo.clone(),
                seed.wrapping_mul(31).wrapping_add(i as u64),
            );
            if noisy {
                layer.weight.phase_noise_std = 0.02;
            }
            model.push(layer);
        }
        let n = 3;
        let x = Tensor::rand_uniform(&mut rng, &[n, 1, 1, dims[0]], -1.0, 1.0);
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let (_, loss_serial, grads_serial) =
            run_step(&mut model, &store, &x, &labels, seed, 1, false);
        let (_, loss_sched1, grads_sched1) =
            run_step(&mut model, &store, &x, &labels, seed, 1, true);
        let (_, loss_par, grads_par) =
            run_step(&mut model, &store, &x, &labels, seed, threads, true);
        prop_assert_eq!(loss_serial, loss_sched1, "scheduler(1) vs legacy");
        prop_assert_eq!(loss_serial, loss_par, "scheduler({}) vs legacy", threads);
        assert_grads_identical(&grads_serial, &grads_sched1, "scheduler(1)");
        assert_grads_identical(&grads_serial, &grads_par, "scheduler(par)");
    }
}
