//! Acceptance suite of the topology-driven `MeshWeight` API redesign.
//!
//! Pins the redesign's contract:
//!
//! * the **single** stage→record→splice engine
//!   (`adept_nn::mesh::prebuild_mesh_weights`) schedules fixed-topology
//!   `PtcWeight`s and frame-bound SuperMesh weights — even **mixed in one
//!   batch** — with node counts, values, noise-stream draws and
//!   per-parameter gradients bit-identical across `ONN_THREADS`-style
//!   thread counts {1, 8} and to the serial non-prebuilt walk;
//! * the unified batched builder on `butterfly_topology(k)` matches the
//!   non-differentiable `BlockMeshTopology::unitary()` reference on the
//!   same phases to 1e-12, per tile;
//! * a full `PtcWeight` built through the trait-object engine on a
//!   butterfly mesh reproduces the complex reference product
//!   `Re(U·diag(σ)·V)` to 1e-12.

use adept::supermesh::{build_mesh_frame, SuperMeshHandles, SuperPtcWeight};
use adept_autodiff::Graph;
use adept_nn::onn::{batched_tile_unitary, PtcWeight};
use adept_nn::{build_mesh_weight, prebuild_mesh_weights, ForwardCtx, MeshWeight, ParamStore};
use adept_photonics::butterfly::butterfly_topology;
use adept_photonics::BlockMeshTopology;
use adept_tensor::{set_gemm_threads, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Thread-count overrides are process-global; tests that flip them must
/// not interleave with each other.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    adept_telemetry::sync::lock_recover(&THREAD_OVERRIDE)
}

/// The batched `[T, B, K]` walk over a butterfly topology must agree with
/// the photonics crate's complex transfer-matrix product for every tile.
#[test]
fn butterfly_batched_builder_matches_topology_unitary_reference() {
    for k in [4usize, 8, 16] {
        let topo = butterfly_topology(k);
        let b = topo.blocks().len();
        let tiles = 3;
        let mut rng = StdRng::seed_from_u64(17 + k as u64);
        let phases = Tensor::rand_uniform(&mut rng, &[tiles, b, k], -3.0, 3.0);
        let store = ParamStore::new();
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, false, 0);
        let (re, im) = batched_tile_unitary(&ctx, &topo, graph.constant(phases.clone()));
        for t in 0..tiles {
            let cols: Vec<Vec<f64>> = (0..b)
                .map(|bi| (0..k).map(|j| phases.at(&[t, bi, j])).collect())
                .collect();
            let want = topo.unitary(&cols);
            assert!(
                re.value().subtensor(t).allclose(&want.re(), 1e-12),
                "k={k} tile {t}: real part diverges from BlockMeshTopology::unitary"
            );
            assert!(
                im.value().subtensor(t).allclose(&want.im(), 1e-12),
                "k={k} tile {t}: imaginary part diverges from BlockMeshTopology::unitary"
            );
        }
    }
}

/// A single-tile butterfly `PtcWeight` built through the trait-object
/// engine must reproduce the complex reference product `Re(U·diag(σ)·V)`
/// computed entirely in the photonics crate.
#[test]
fn unified_builder_matches_complex_reference_product() {
    let k = 8;
    let topo = butterfly_topology(k);
    let b = topo.blocks().len();
    let mut store = ParamStore::new();
    let w = PtcWeight::new(&mut store, "w", k, k, topo.clone(), topo.clone(), 5);
    // Overwrite the random initialization with known phases and σ.
    let mut rng = StdRng::seed_from_u64(6);
    let pu = Tensor::rand_uniform(&mut rng, &[b, k], -3.0, 3.0);
    let pv = Tensor::rand_uniform(&mut rng, &[b, k], -3.0, 3.0);
    let sigma = Tensor::rand_uniform(&mut rng, &[k], 0.25, 2.0);
    let ids = MeshWeight::param_ids(&w);
    assert_eq!(ids.len(), 3, "single tile: phases_u, phases_v, sigma");
    *store.value_mut(ids[0]) = pu.clone();
    *store.value_mut(ids[1]) = pv.clone();
    *store.value_mut(ids[2]) = sigma.clone();

    let graph = Graph::new();
    let ctx = ForwardCtx::new(&graph, &store, false, 0);
    let built = build_mesh_weight(&ctx, &w).value();

    let to_cols = |p: &Tensor| -> Vec<Vec<f64>> {
        (0..b)
            .map(|bi| (0..k).map(|j| p.at(&[bi, j])).collect())
            .collect()
    };
    let u = topo.unitary(&to_cols(&pu));
    let v = topo.unitary(&to_cols(&pv));
    // U·diag(σ): scale U's columns by σ.
    let mut us = u;
    for j in 0..k {
        for i in 0..k {
            us.update(i, j, |z| z * sigma.at(&[j]));
        }
    }
    let want = us.matmul(&v).re();
    assert!(
        built.allclose(&want, 1e-12),
        "unified build diverges from Re(U·diag(σ)·V): max diff {}",
        built.max_abs_diff(&want)
    );
}

/// One step over a **mixed** batch — two fixed-topology `PtcWeight`s (one
/// noisy, one ragged) plus a frame-bound SuperMesh weight — through the
/// single engine. Node count, values, noise draws and per-parameter
/// gradients must be bit-identical across thread counts {1, 8} and to the
/// serial non-prebuilt walk.
#[test]
fn mixed_batch_is_bit_identical_across_thread_counts() {
    let _guard = lock();
    let mut store = ParamStore::new();
    let butterfly = butterfly_topology(4);
    let mut rng = StdRng::seed_from_u64(23);
    let random_topo = BlockMeshTopology::random(&mut rng, 4, 3);
    let mut w1 = PtcWeight::new(&mut store, "w1", 8, 8, butterfly.clone(), butterfly, 31);
    w1.phase_noise_std = 0.05; // noise draws pinned through staging
    let w2 = PtcWeight::new(&mut store, "w2", 6, 5, random_topo.clone(), random_topo, 32);
    let handles = SuperMeshHandles::register(&mut store, 4, 2, 1, 33);
    let ws = SuperPtcWeight::new(&mut store, "ws", 7, 6, 4, 2, 34);

    type Grads = Vec<(String, Tensor)>;
    let run = |threads: usize, prebuild: bool| -> (usize, Vec<f64>, Grads) {
        set_gemm_threads(threads);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 9);
        let fu = build_mesh_frame(&ctx, &handles.u, 4, &[[0.2, -0.1]; 2], 0.9);
        let fv = build_mesh_frame(&ctx, &handles.v, 4, &[[0.1, 0.3]; 2], 0.9);
        let bound = ws.bind(&fu, &fv);
        if prebuild {
            let batch: Vec<&dyn MeshWeight<'_>> = vec![&w1, &w2, &bound];
            prebuild_mesh_weights(&ctx, &batch);
        }
        let b1 = w1.build(&ctx);
        let b2 = w2.build(&ctx);
        let b3 = ws.build(&ctx, &fu, &fv);
        let loss = b1
            .square()
            .sum()
            .add(b2.square().sum())
            .add(b3.square().sum());
        let values: Vec<f64> = b1
            .value()
            .as_slice()
            .iter()
            .chain(b2.value().as_slice())
            .chain(b3.value().as_slice())
            .copied()
            .collect();
        let grads = graph.backward_parallel(loss);
        let mut per_param: Grads = ctx
            .into_param_grads(&grads)
            .into_iter()
            .map(|(id, g)| (store.name(id).to_string(), g))
            .collect();
        per_param.sort_by(|a, b| a.0.cmp(&b.0));
        set_gemm_threads(0);
        (graph.len(), values, per_param)
    };

    let (len_serial, val_serial, grad_serial) = run(1, false);
    for threads in [1usize, 8] {
        let (len_p, val_p, grad_p) = run(threads, true);
        assert_eq!(len_serial, len_p, "tape length ({threads} threads)");
        assert_eq!(val_serial, val_p, "values ({threads} threads)");
        assert_eq!(grad_serial.len(), grad_p.len());
        for ((name, a), (name2, b)) in grad_serial.iter().zip(&grad_p) {
            assert_eq!(name, name2);
            assert_eq!(
                a.as_slice(),
                b.as_slice(),
                "gradient of {name} must be bit-identical ({threads} threads)"
            );
        }
    }
}

/// Rebinding a SuperMesh weight to different frames than the scheduler
/// used must panic (the cache tag fingerprints the bound frames).
#[test]
#[should_panic(expected = "different step inputs")]
fn stale_frame_binding_panics() {
    let mut store = ParamStore::new();
    let handles = SuperMeshHandles::register(&mut store, 4, 2, 1, 44);
    let ws = SuperPtcWeight::new(&mut store, "ws", 4, 4, 4, 2, 45);
    let graph = Graph::new();
    let ctx = ForwardCtx::new(&graph, &store, true, 0);
    let fu = build_mesh_frame(&ctx, &handles.u, 4, &[[0.0; 2]; 2], 1.0);
    let fv = build_mesh_frame(&ctx, &handles.v, 4, &[[0.0; 2]; 2], 1.0);
    let bound = ws.bind(&fu, &fv);
    let batch: Vec<&dyn MeshWeight<'_>> = vec![&bound];
    prebuild_mesh_weights(&ctx, &batch);
    // Fresh frames on the same tape: different variables, different tag.
    let fu2 = build_mesh_frame(&ctx, &handles.u, 4, &[[0.5, 0.5]; 2], 1.0);
    let fv2 = build_mesh_frame(&ctx, &handles.v, 4, &[[0.5, 0.5]; 2], 1.0);
    let _ = ws.build(&ctx, &fu2, &fv2);
}
