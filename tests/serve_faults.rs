//! Failure-semantics suite for the serving runtime (`adept_infer::serve`).
//!
//! Drives the runtime through [`serve_with`] with mock [`BatchRunner`]s
//! that stall or panic on cue, pinning the contracts the production path
//! relies on: a flooded bounded queue sheds instead of growing, expired
//! requests are dropped instead of served late, a panicking shard fails
//! only its own batch while the runtime keeps serving, shutdown drains
//! every admitted request, and [`ServeReport`]'s outcome counts always
//! sum to the submitted total.

use adept_infer::{serve_with, BatchRunner, RequestOutcome, ServeConfig};
use std::time::Duration;

/// Input value that makes [`MockRunner`] panic mid-batch.
const POISON: f64 = 666.0;

/// One-feature runner computing `2x + 1`, with an optional per-batch
/// stall (to build queue pressure) and a panic on poisoned inputs.
struct MockRunner {
    stall: Duration,
}

impl MockRunner {
    fn factory(stall: Duration) -> impl Fn() -> Box<dyn BatchRunner> + Sync {
        move || Box::new(MockRunner { stall })
    }
}

impl BatchRunner for MockRunner {
    fn input_elems(&self) -> usize {
        1
    }

    fn output_features(&self) -> usize {
        1
    }

    fn max_batch(&self) -> usize {
        64
    }

    fn run_batch(&mut self, input: &[f64], n: usize, out: &mut [f64]) {
        if !self.stall.is_zero() {
            std::thread::sleep(self.stall);
        }
        for i in 0..n {
            assert!(
                input[i] != POISON,
                "poisoned request reached the shard (expected: batch fails)"
            );
            out[i] = 2.0 * input[i] + 1.0;
        }
    }
}

fn cfg(max_batch: usize, threads: usize, queue_cap: usize, deadline: Duration) -> ServeConfig {
    ServeConfig {
        max_batch,
        threads,
        max_wait: Duration::from_micros(200),
        arrival_spacing: Duration::ZERO,
        queue_cap,
        deadline,
    }
}

fn assert_counts_sum(report: &adept_infer::ServeReport) {
    assert_eq!(
        report.served + report.shed + report.timed_out + report.failed,
        report.requests,
        "outcome counts must sum to submitted requests"
    );
    assert_eq!(report.outcomes.len(), report.requests);
    for want in [
        (RequestOutcome::Served, report.served),
        (RequestOutcome::Shed, report.shed),
        (RequestOutcome::TimedOut, report.timed_out),
        (RequestOutcome::Failed, report.failed),
    ] {
        let n = report.outcomes.iter().filter(|&&o| o == want.0).count();
        assert_eq!(n, want.1, "count mismatch for {:?}", want.0);
    }
}

/// Flooding a tiny bounded queue sheds the overflow at admission; every
/// admitted request still gets served (no deadline, no faults) with the
/// correct output, and shed slots stay zeroed.
#[test]
fn flooded_queue_sheds_instead_of_growing() {
    let n = 10;
    let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let make = MockRunner::factory(Duration::from_millis(30));
    let (out, report) = serve_with(&make, &inputs, n, &cfg(1, 1, 2, Duration::ZERO));
    assert_counts_sum(&report);
    assert!(
        report.shed >= 1,
        "cap-2 queue under a 10-request firehose must shed"
    );
    assert!(report.served >= 1, "admitted requests must still be served");
    assert_eq!(report.timed_out, 0);
    assert_eq!(report.failed, 0);
    for (i, &o) in report.outcomes.iter().enumerate() {
        match o {
            RequestOutcome::Served => assert_eq!(out[i], 2.0 * i as f64 + 1.0),
            RequestOutcome::Shed => assert_eq!(out[i], 0.0, "shed slot must stay zeroed"),
            other => panic!("unexpected outcome {other:?} for request {i}"),
        }
    }
}

/// With a short deadline and a slow shard, requests that expire while
/// queued are dropped (zeroed output, counted as timed out) instead of
/// being served late; p50/p99 cover only the served requests.
#[test]
fn expired_requests_are_dropped_not_served_late() {
    let n = 4;
    let inputs: Vec<f64> = (0..n).map(|i| 10.0 + i as f64).collect();
    let make = MockRunner::factory(Duration::from_millis(100));
    let (out, report) = serve_with(
        &make,
        &inputs,
        n,
        &cfg(1, 1, 1024, Duration::from_millis(25)),
    );
    assert_counts_sum(&report);
    // One 100ms batch in flight is enough to expire everything still
    // queued behind it (deadline 25ms « stall 100ms).
    assert!(
        report.timed_out >= n - 1,
        "requests queued behind a 100ms batch must expire, got {report:?}"
    );
    assert_eq!(report.shed, 0);
    assert_eq!(report.failed, 0);
    for (i, &o) in report.outcomes.iter().enumerate() {
        match o {
            RequestOutcome::Served => assert_eq!(out[i], 2.0 * (10.0 + i as f64) + 1.0),
            RequestOutcome::TimedOut => assert_eq!(out[i], 0.0, "expired slot must stay zeroed"),
            other => panic!("unexpected outcome {other:?} for request {i}"),
        }
    }
    if report.served == 0 {
        assert_eq!(report.p50_latency, Duration::ZERO);
        assert_eq!(report.p99_latency, Duration::ZERO);
    }
}

/// A panicking shard fails exactly its own batch; the worker swaps in a
/// pristine runner and keeps serving — requests submitted after the
/// poisoned ones still complete with correct outputs.
#[test]
fn worker_panic_fails_only_its_batch() {
    let n = 12;
    let mut inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    inputs[3] = POISON;
    inputs[7] = POISON;
    let make = MockRunner::factory(Duration::ZERO);
    // max_batch 1 makes each request its own batch, so exactly the
    // poisoned requests fail.
    let (out, report) = serve_with(&make, &inputs, n, &cfg(1, 2, 1024, Duration::ZERO));
    assert_counts_sum(&report);
    assert_eq!(report.failed, 2, "exactly the two poisoned batches fail");
    assert_eq!(
        report.served,
        n - 2,
        "runtime must keep serving after panics"
    );
    for (i, &o) in report.outcomes.iter().enumerate() {
        if inputs[i] == POISON {
            assert_eq!(o, RequestOutcome::Failed, "request {i}");
            assert_eq!(out[i], 0.0, "failed slot must stay zeroed");
        } else {
            assert_eq!(o, RequestOutcome::Served, "request {i}");
            assert_eq!(out[i], 2.0 * i as f64 + 1.0, "request {i}");
        }
    }
}

/// Poisoned requests sharing a batch with healthy ones fail the whole
/// batch — and nothing else. The blast radius is the batch, never the
/// session.
#[test]
fn blast_radius_is_the_batch_not_the_session() {
    let n = 32;
    let mut inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    inputs[5] = POISON;
    let make = MockRunner::factory(Duration::ZERO);
    let (out, report) = serve_with(&make, &inputs, n, &cfg(8, 2, 1024, Duration::ZERO));
    assert_counts_sum(&report);
    assert!(report.failed >= 1, "the poisoned batch must fail");
    assert!(
        report.failed <= 8,
        "a panic must not fail more than one batch, got {}",
        report.failed
    );
    assert_eq!(report.served, n - report.failed);
    assert_eq!(report.outcomes[5], RequestOutcome::Failed);
    for (i, &o) in report.outcomes.iter().enumerate() {
        if o == RequestOutcome::Served {
            assert_eq!(out[i], 2.0 * i as f64 + 1.0, "request {i}");
        } else {
            assert_eq!(out[i], 0.0, "non-served slot {i} must stay zeroed");
        }
    }
}

/// Panicked batches must not poison the runtime's shared locks: a stream
/// where every worker panics repeatedly (poison on every 5th request,
/// more poisoned requests than workers) still serves every healthy
/// request with correct outputs — including the healthy tail submitted
/// *after* all the panics — and the accounting stays exact. Before the
/// `PoisonError` recovery fix, one panicked holder of the latency/queue
/// locks would cascade panics into every subsequent lock site instead of
/// failing only its own batch.
#[test]
fn repeated_panics_do_not_poison_subsequent_requests() {
    let n = 60;
    let mut inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    // 8 poisoned requests spread through the first 40, so each of the 3
    // workers replaces its runner at least once; the last 20 are healthy.
    let poisoned: Vec<usize> = (0..40).step_by(5).collect();
    for &i in &poisoned {
        inputs[i] = POISON;
    }
    let make = MockRunner::factory(Duration::ZERO);
    // max_batch 1: exactly the poisoned requests fail, everything else
    // must be served — any cascade would show up as extra failures or a
    // propagated panic out of serve_with.
    let (out, report) = serve_with(&make, &inputs, n, &cfg(1, 3, 1024, Duration::ZERO));
    assert_counts_sum(&report);
    assert_eq!(report.failed, poisoned.len(), "only poisoned batches fail");
    assert_eq!(
        report.served,
        n - poisoned.len(),
        "every healthy request must be served after repeated panics"
    );
    for (i, &o) in report.outcomes.iter().enumerate() {
        if inputs[i] == POISON {
            assert_eq!(o, RequestOutcome::Failed, "request {i}");
            assert_eq!(out[i], 0.0, "failed slot must stay zeroed");
        } else {
            assert_eq!(o, RequestOutcome::Served, "request {i}");
            assert_eq!(out[i], 2.0 * i as f64 + 1.0, "request {i}");
        }
    }
    assert!(
        report.p99_latency >= report.p50_latency,
        "percentiles over served-only samples stay ordered"
    );
}

/// Closing the queue stops admissions but drains everything already
/// admitted: with capacity for all requests and no deadline, every
/// request is served exactly once, across uneven batch splits and
/// multiple workers.
#[test]
fn shutdown_drains_every_admitted_request() {
    let n = 64;
    let inputs: Vec<f64> = (0..n).map(|i| 0.5 * i as f64).collect();
    let make = MockRunner::factory(Duration::from_micros(300));
    let (out, report) = serve_with(&make, &inputs, n, &cfg(5, 3, 0, Duration::ZERO));
    assert_counts_sum(&report);
    assert_eq!(
        report.served, n,
        "drain must complete every admitted request"
    );
    assert_eq!(report.shed + report.timed_out + report.failed, 0);
    assert!(
        report.batches >= n / 5,
        "64 requests at batch cap 5 need >= 12 batches"
    );
    for i in 0..n {
        assert_eq!(out[i], 2.0 * (0.5 * i as f64) + 1.0, "request {i}");
    }
    assert!(report.p99_latency >= report.p50_latency);
    assert!(report.req_per_sec > 0.0);
}

/// The report's latency split: queue-wait and exec percentiles cover only
/// served work, exec reflects the runner's real `run_batch` wall-clock
/// (the stalling mock cannot execute faster than its stall), and each
/// pair is ordered p50 ≤ p99. A session that serves nothing (every batch
/// poisoned) reports zeros for the whole split.
#[test]
fn report_splits_latency_into_queue_wait_and_exec() {
    let n = 8;
    let stall = Duration::from_millis(5);
    let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let make = MockRunner::factory(stall);
    let (_, report) = serve_with(&make, &inputs, n, &cfg(2, 1, n, Duration::ZERO));
    assert_counts_sum(&report);
    assert_eq!(report.served, n, "no deadline + roomy queue serves all");
    assert!(
        report.exec_p50 >= stall,
        "exec p50 {:?} below the runner's {stall:?} stall",
        report.exec_p50
    );
    assert!(report.exec_p50 <= report.exec_p99);
    assert!(report.queue_wait_p50 <= report.queue_wait_p99);
    assert!(
        report.p99_latency >= report.exec_p50,
        "end-to-end latency contains execution"
    );

    let poisoned = vec![POISON; n];
    let (_, rep) = serve_with(&make, &poisoned, n, &cfg(2, 1, n, Duration::ZERO));
    assert_counts_sum(&rep);
    assert_eq!(rep.served, 0, "all-poison stream must serve nothing");
    assert_eq!(rep.failed, n);
    for d in [
        rep.queue_wait_p50,
        rep.queue_wait_p99,
        rep.exec_p50,
        rep.exec_p99,
    ] {
        assert_eq!(d, Duration::ZERO, "no served work, no latency split");
    }
}
