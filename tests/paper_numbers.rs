//! Integration test: every *structural* cell of the paper's Tables 1–2
//! (device counts and footprints of the MZI-ONN and FFT-ONN baselines, and
//! the analytic block bounds behind each ADEPT window) is reproduced
//! exactly by the workspace.

use adept_photonics::{block_count_bounds, butterfly::butterfly_topology, DeviceCount, Pdk};

struct BaselineCell {
    k: usize,
    cr: usize,
    dc: usize,
    blocks: usize,
    footprint_amf: f64,
}

#[test]
fn table1_mzi_rows_exact() {
    let rows = [
        BaselineCell {
            k: 8,
            cr: 0,
            dc: 112,
            blocks: 32,
            footprint_amf: 1909.0,
        },
        BaselineCell {
            k: 16,
            cr: 0,
            dc: 480,
            blocks: 64,
            footprint_amf: 7683.0,
        },
        BaselineCell {
            k: 32,
            cr: 0,
            dc: 1984,
            blocks: 128,
            footprint_amf: 30829.0,
        },
    ];
    for row in rows {
        let c = DeviceCount::mzi_ptc(row.k);
        assert_eq!(c.cr, row.cr, "k={}", row.k);
        assert_eq!(c.dc, row.dc, "k={}", row.k);
        assert_eq!(c.blocks, row.blocks, "k={}", row.k);
        assert_eq!(c.ps, row.k * row.blocks, "k={}", row.k);
        assert_eq!(
            c.footprint_kum2(&Pdk::amf()).round(),
            row.footprint_amf,
            "k={}",
            row.k
        );
    }
}

#[test]
fn table1_fft_rows_exact() {
    let rows = [
        BaselineCell {
            k: 8,
            cr: 16,
            dc: 24,
            blocks: 6,
            footprint_amf: 363.0,
        },
        BaselineCell {
            k: 16,
            cr: 88,
            dc: 64,
            blocks: 8,
            footprint_amf: 972.0,
        },
        BaselineCell {
            k: 32,
            cr: 416,
            dc: 160,
            blocks: 10,
            footprint_amf: 2443.0,
        },
    ];
    for row in rows {
        let t = butterfly_topology(row.k);
        let c = t.ptc_device_count(&t);
        assert_eq!(c.cr, row.cr, "k={}", row.k);
        assert_eq!(c.dc, row.dc, "k={}", row.k);
        assert_eq!(c.blocks, row.blocks, "k={}", row.k);
        assert_eq!(
            c.footprint_kum2(&Pdk::amf()).round(),
            row.footprint_amf,
            "k={}",
            row.k
        );
    }
}

#[test]
fn table2_baseline_rows_exact() {
    let aim = Pdk::aim();
    let mzi = DeviceCount::mzi_ptc(16);
    assert_eq!(mzi.footprint_kum2(&aim).round(), 4480.0);
    let t = butterfly_topology(16);
    let fft = t.ptc_device_count(&t);
    assert_eq!(fft.footprint_kum2(&aim).round(), 1007.0);
}

#[test]
fn published_adept_designs_fit_their_windows_and_bounds() {
    // (k, pdk, window, published #Blk) from Tables 1–2 — the analytic
    // Eq. 16 bounds must bracket every published block count.
    let aim = Pdk::aim();
    let amf = Pdk::amf();
    let cases: Vec<(usize, &Pdk, f64, f64, usize)> = vec![
        (8, &amf, 240.0, 300.0, 5),
        (8, &amf, 336.0, 420.0, 6),
        (8, &amf, 432.0, 540.0, 8),
        (8, &amf, 528.0, 660.0, 11),
        (8, &amf, 624.0, 780.0, 13),
        (16, &amf, 480.0, 600.0, 4),
        (16, &amf, 672.0, 840.0, 6),
        (16, &amf, 864.0, 1080.0, 8),
        (16, &amf, 1056.0, 1320.0, 10),
        (16, &amf, 1248.0, 1560.0, 12),
        (32, &amf, 960.0, 1200.0, 4),
        (32, &amf, 1344.0, 1680.0, 6),
        (32, &amf, 1728.0, 2160.0, 8),
        (32, &amf, 2112.0, 2640.0, 10),
        (32, &amf, 2496.0, 3120.0, 12),
        (16, &aim, 384.0, 480.0, 5),
        (16, &aim, 480.0, 600.0, 8),
        (16, &aim, 672.0, 840.0, 8),
        (16, &aim, 864.0, 1080.0, 13),
        (16, &aim, 1056.0, 1320.0, 14),
        (16, &aim, 1248.0, 1560.0, 16),
    ];
    for (k, pdk, f_min, f_max, published_blocks) in cases {
        let b = block_count_bounds(k, pdk, f_min, f_max);
        assert!(
            b.b_min <= published_blocks && published_blocks <= b.b_max,
            "k={k} {} window [{f_min},{f_max}]: published {published_blocks} ∉ [{}, {}]",
            pdk.name,
            b.b_min,
            b.b_max
        );
    }
}

#[test]
fn published_adept_footprints_reproduce_from_counts() {
    // Footprint column of Table 1's ADEPT rows recomputed from the
    // published #PS/#DC/#CR counts must land on the published number
    // (±1 kµm² rounding).
    let amf = Pdk::amf();
    // (k, cr, dc, blocks, published F)
    let rows = [
        (8usize, 24usize, 17usize, 5usize, 299.0),
        (8, 17, 19, 6, 356.0),
        (8, 26, 27, 8, 478.0),
        (8, 27, 36, 11, 654.0),
        (8, 33, 41, 13, 771.0),
        (16, 45, 28, 4, 480.0),
        (16, 68, 43, 6, 722.0),
        (16, 127, 59, 8, 967.0),
        (16, 174, 71, 10, 1206.0),
        (16, 131, 85, 12, 1441.0),
        (32, 223, 60, 4, 975.0),
        (32, 333, 87, 6, 1457.0),
        (32, 691, 150, 10, 2445.0),
        (32, 717, 179, 12, 2926.0),
    ];
    for (k, cr, dc, blocks, f) in rows {
        let c = DeviceCount::new(k * blocks, dc, cr, blocks);
        let got = c.footprint_kum2(&amf);
        assert!(
            (got - f).abs() <= 1.0,
            "k={k} blocks={blocks}: recomputed {got:.1} vs published {f}"
        );
    }
    // The published 32×32 ADEPT-a3 row (#CR/#DC/#Blk = 628/178/8,
    // F = 1959) is internally inconsistent with the paper's own cost
    // model: 256·6.8 + 178·1.5 + 628·0.064 = 2048 ≠ 1959. Every other row
    // of Tables 1–2 reproduces to ±1 kµm², so we record the discrepancy
    // here rather than asserting it.
    let a3 = DeviceCount::new(32 * 8, 178, 628, 8);
    assert_eq!(a3.footprint_kum2(&amf).round(), 2048.0);
}

#[test]
fn table2_adept_footprints_reproduce_from_counts() {
    let aim = Pdk::aim();
    let rows = [
        (15usize, 35usize, 5usize, 414.0),
        (1, 58, 8, 557.0),
        (26, 58, 8, 679.0),
        (17, 92, 13, 971.0),
        (25, 99, 14, 1079.0),
        (89, 111, 16, 1520.0),
    ];
    for (cr, dc, blocks, f) in rows {
        let c = DeviceCount::new(16 * blocks, dc, cr, blocks);
        let got = c.footprint_kum2(&aim);
        assert!(
            (got - f).abs() <= 1.0,
            "blocks={blocks}: recomputed {got:.1} vs published {f}"
        );
    }
}
