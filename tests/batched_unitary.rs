//! Acceptance tests of the batched PTC unitary builder.
//!
//! The builder stacks all `T` tiles' phases into `[T, B, K]` and walks the
//! mesh blocks once over a `[T, K, K]` running product. These tests pin its
//! contract: bit-equivalence against the scalar `tile_unitary` /
//! `super_unitary` reference chains, numerical unitarity, finite-difference
//! gradients through every new batched node, and the `O(B)` tape-size
//! guarantee for a full `PtcWeight` build.

use adept::supermesh::{batched_super_unitary, build_mesh_frame, super_unitary, SuperMeshHandles};
use adept_autodiff::{batched_phase_rotate, check_gradients, Graph};
use adept_linalg::CMatrix;
use adept_nn::onn::{batched_tile_unitary, tile_unitary, PtcWeight};
use adept_nn::{ForwardCtx, ParamStore};
use adept_photonics::BlockMeshTopology;
use adept_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn batched_builder_matches_scalar_reference_bitwise() {
    let mut rng = StdRng::seed_from_u64(1);
    let topo = BlockMeshTopology::random(&mut rng, 8, 5);
    let tiles = 6;
    let phases = Tensor::rand_uniform(&mut rng, &[tiles, 5, 8], -3.0, 3.0);
    let store = ParamStore::new();
    let graph = Graph::new();
    let ctx = ForwardCtx::new(&graph, &store, false, 0);
    let (re, im) = batched_tile_unitary(&ctx, &topo, graph.constant(phases.clone()));
    for t in 0..tiles {
        let (sre, sim) = tile_unitary(&ctx, &topo, graph.constant(phases.subtensor(t)));
        assert_eq!(re.value().subtensor(t).as_slice(), sre.value().as_slice());
        assert_eq!(im.value().subtensor(t).as_slice(), sim.value().as_slice());
    }
}

#[test]
fn batched_builder_tiles_are_unitary() {
    let mut rng = StdRng::seed_from_u64(2);
    let topo = BlockMeshTopology::random(&mut rng, 8, 4);
    let tiles = 4;
    let phases = Tensor::rand_uniform(&mut rng, &[tiles, 4, 8], -3.0, 3.0);
    let store = ParamStore::new();
    let graph = Graph::new();
    let ctx = ForwardCtx::new(&graph, &store, false, 0);
    let (re, im) = batched_tile_unitary(&ctx, &topo, graph.constant(phases));
    for t in 0..tiles {
        let u = CMatrix::from_re_im(&re.value().subtensor(t), &im.value().subtensor(t));
        assert!(
            u.is_unitary(1e-9),
            "tile {t}: error {}",
            u.unitarity_error()
        );
    }
}

#[test]
fn batched_phase_rotate_gradcheck() {
    let mut rng = StdRng::seed_from_u64(3);
    let phi = Tensor::rand_uniform(&mut rng, &[3, 4], -1.5, 1.5);
    let m_re = Tensor::rand_uniform(&mut rng, &[3, 4, 4], -1.0, 1.0);
    let m_im = Tensor::rand_uniform(&mut rng, &[3, 4, 4], -1.0, 1.0);
    check_gradients(
        |_, v| {
            let (re, im) = batched_phase_rotate(v[0], v[1], v[2]);
            re.square().sum().add(im.mul(re).sum())
        },
        &[phi, m_re, m_im],
        1e-6,
        1e-5,
    )
    .unwrap();
}

#[test]
fn batched_builder_gradcheck_through_full_construction() {
    // Finite differences through the whole batched chain: index_axis1 →
    // phase rotate → shared coupler GEMM → row permutation, per block.
    let mut rng = StdRng::seed_from_u64(4);
    let topo = BlockMeshTopology::random(&mut rng, 4, 3);
    let phases = Tensor::rand_uniform(&mut rng, &[2, 3, 4], -1.0, 1.0);
    check_gradients(
        |g, vars| {
            let store = ParamStore::new();
            let ctx = ForwardCtx::new(g, &store, false, 0);
            let (re, im) = batched_tile_unitary(&ctx, &topo, vars[0]);
            re.square().sum().add(im.mul(re).sum())
        },
        &[phases],
        1e-6,
        1e-5,
    )
    .unwrap();
}

#[test]
fn ptc_build_tape_shrinks_at_least_5x_and_values_agree() {
    // 64 tiles on the FFT butterfly: the batched tape must be ≥5× smaller
    // (in practice ~40×) while producing the identical weight.
    let mut store = ParamStore::new();
    let topo = BlockMeshTopology::butterfly(8);
    let w = PtcWeight::new(&mut store, "w", 64, 64, topo.clone(), topo, 5);
    let g_per = Graph::new();
    let ctx = ForwardCtx::new(&g_per, &store, false, 0);
    let per_tile = w.build_per_tile(&ctx).value();
    let per_tile_nodes = g_per.len();
    let g_bat = Graph::new();
    let ctx = ForwardCtx::new(&g_bat, &store, false, 0);
    let batched = w.build(&ctx).value();
    let batched_nodes = g_bat.len();
    assert_eq!(batched.as_slice(), per_tile.as_slice(), "bit-equal weights");
    assert!(
        per_tile_nodes >= 5 * batched_nodes,
        "tape must shrink ≥5×: {per_tile_nodes} vs {batched_nodes}"
    );
}

#[test]
fn ragged_weight_joins_batched_sweep() {
    // 61×53 with K=8: bottom/right edge tiles are cropped; the ragged GEMM
    // sweep must reproduce the pad-then-crop reference exactly, and
    // gradients must flow into every tile's parameters.
    let mut store = ParamStore::new();
    let topo = BlockMeshTopology::butterfly(8);
    let w = PtcWeight::new(&mut store, "w", 53, 61, topo.clone(), topo, 6);
    let graph = Graph::new();
    let ctx = ForwardCtx::new(&graph, &store, true, 0);
    let built = w.build(&ctx);
    assert_eq!(built.shape(), vec![61, 53]);
    let g2 = Graph::new();
    let ctx2 = ForwardCtx::new(&g2, &store, false, 0);
    assert_eq!(
        built.value().as_slice(),
        w.build_per_tile(&ctx2).value().as_slice()
    );
    let grads = graph.backward(built.square().sum());
    let updates = ctx.into_param_grads(&grads);
    store.accumulate_many(&updates);
    for id in w.param_ids() {
        assert!(
            store.grad(id).norm() > 0.0,
            "parameter {} received no gradient",
            store.name(id)
        );
    }
}

#[test]
fn batched_super_unitary_matches_reference_bitwise() {
    let k = 6;
    let mut store = ParamStore::new();
    let h = SuperMeshHandles::register(&mut store, k, 3, 1, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let tiles = 3;
    let phases = Tensor::rand_uniform(&mut rng, &[tiles, 3, k], -2.0, 2.0);
    let graph = Graph::new();
    let ctx = ForwardCtx::new(&graph, &store, true, 0);
    let frame = build_mesh_frame(&ctx, &h.u, k, &[[0.2, -0.1], [0.0; 2], [0.5, 0.3]], 0.8);
    for rows in [true, false] {
        let (re, im) = batched_super_unitary(&ctx, &frame, graph.constant(phases.clone()), rows);
        for t in 0..tiles {
            let (sre, sim) = super_unitary(&ctx, &frame, graph.constant(phases.subtensor(t)), rows);
            assert_eq!(re.value().subtensor(t).as_slice(), sre.value().as_slice());
            assert_eq!(im.value().subtensor(t).as_slice(), sim.value().as_slice());
        }
    }
}
