//! Integration test: the differentiable (autodiff) photonic constructions
//! agree with the direct complex transfer-matrix substrate, across crates.

use adept_autodiff::Graph;
use adept_linalg::CMatrix;
use adept_nn::onn::{tile_unitary, PtcWeight};
use adept_nn::{ForwardCtx, ParamStore};
use adept_photonics::clements::decompose;
use adept_photonics::{BlockMeshTopology, PhaseNoise};
use adept_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn autodiff_butterfly_matches_reference_for_all_sizes() {
    for k in [4usize, 8, 16] {
        let topo = BlockMeshTopology::butterfly(k);
        let b = topo.blocks().len();
        let mut rng = StdRng::seed_from_u64(k as u64);
        let phases = Tensor::rand_uniform(&mut rng, &[b, k], -3.0, 3.0);
        let store = ParamStore::new();
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, false, 0);
        let pv = graph.constant(phases.clone());
        let (re, im) = tile_unitary(&ctx, &topo, pv);
        let got = CMatrix::from_re_im(&re.value(), &im.value());
        let cols: Vec<Vec<f64>> = (0..b)
            .map(|bi| (0..k).map(|j| phases.at(&[bi, j])).collect())
            .collect();
        let want = topo.unitary(&cols);
        assert!(got.fro_dist(&want) < 1e-9, "k={k}");
        assert!(got.is_unitary(1e-9), "k={k}");
    }
}

#[test]
fn ptc_weight_gradients_match_finite_differences() {
    // End-to-end gradient check through a PTC-tiled weight: phases of one
    // tile, treated as the checked input.
    let mut rng = StdRng::seed_from_u64(3);
    let topo = BlockMeshTopology::random(&mut rng, 4, 3);
    let phases = Tensor::rand_uniform(&mut rng, &[3, 4], -1.0, 1.0);
    adept_autodiff::check_gradients(
        |g, vars| {
            let store = ParamStore::new();
            let ctx = ForwardCtx::new(g, &store, false, 0);
            let (re, im) = tile_unitary(&ctx, &topo, vars[0]);
            let sig = g.constant(Tensor::linspace(0.5, 2.0, 4));
            re.mul(sig).square().sum().add(im.square().sum())
        },
        &[phases],
        1e-6,
        1e-5,
    )
    .unwrap();
}

#[test]
fn mzi_decomposition_survives_noise_unitarily() {
    // Phase drift in the MZI mesh never breaks unitarity — passivity of the
    // photonic circuit is preserved by construction.
    let mut rng = StdRng::seed_from_u64(5);
    let topo = BlockMeshTopology::random(&mut rng, 8, 4);
    let phases: Vec<Vec<f64>> = (0..4)
        .map(|_| (0..8).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect();
    let u = topo.unitary(&phases);
    let d = decompose(&u);
    assert!(d.reconstruct().fro_dist(&u) < 1e-8);
    let noise = PhaseNoise::new(0.05);
    for seed in 0..5 {
        let mut nrng = StdRng::seed_from_u64(seed);
        let noisy = d.perturbed(|| noise.sample(&mut nrng)).reconstruct();
        assert!(noisy.is_unitary(1e-8));
    }
}

#[test]
fn weight_matrix_error_grows_monotonically_with_phase_noise() {
    let mut store = ParamStore::new();
    let topo = BlockMeshTopology::butterfly(8);
    let mut w = PtcWeight::new(&mut store, "w", 16, 8, topo.clone(), topo, 1);
    let clean = {
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, false, 0);
        w.build(&ctx).value()
    };
    let mut last_err = 0.0;
    for (i, std) in [0.01, 0.05, 0.2].into_iter().enumerate() {
        w.phase_noise_std = std;
        // Average over draws to get a stable monotonicity signal.
        let mut err = 0.0;
        for s in 0..8 {
            let graph = Graph::new();
            let ctx = ForwardCtx::new(&graph, &store, false, 100 + s);
            err += w.build(&ctx).value().max_abs_diff(&clean);
        }
        err /= 8.0;
        assert!(err > last_err, "noise level {i}: {err} !> {last_err}");
        last_err = err;
    }
}

#[test]
fn searched_topology_round_trips_through_nn_layer() {
    // A design exported by the search machinery must be consumable by the
    // nn crate and produce a working layer.
    use adept::search::{search, AdeptConfig};
    use adept_photonics::Pdk;
    let mut cfg = AdeptConfig::quick(8, Pdk::amf(), 240.0, 300.0);
    cfg.epochs = 3;
    cfg.warmup_epochs = 1;
    cfg.spl_epoch = 2;
    cfg.n_train = 48;
    cfg.n_test = 24;
    cfg.image_size = 6;
    cfg.channels = 3;
    cfg.classes = 3;
    cfg.max_blocks_per_side = 3;
    let out = search(&cfg);
    let mut store = ParamStore::new();
    let mut layer = adept_nn::onn::OnnLinear::new(
        &mut store,
        "fc",
        12,
        5,
        out.design.topo_u.clone(),
        out.design.topo_v.clone(),
        1,
    );
    use adept_nn::layers::Layer;
    let graph = Graph::new();
    let ctx = ForwardCtx::new(&graph, &store, true, 0);
    let x = graph.constant(Tensor::ones(&[2, 12]));
    let y = layer.forward(&ctx, x);
    assert_eq!(y.shape(), vec![2, 5]);
    let grads = graph.backward(y.square().sum());
    let updates = ctx.into_param_grads(&grads);
    assert!(!updates.is_empty());
}
