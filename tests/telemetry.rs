//! Determinism contract of the telemetry subsystem, end to end.
//!
//! `adept_telemetry`'s deterministic render promises that *stable*
//! counters and span counts depend only on the workload, never on
//! `ONN_THREADS`. This binary runs the same traced train → compile →
//! serve workload at 1 and 8 GEMM threads in one process (telemetry
//! enabled programmatically — the harness keeps `ONN_TELEMETRY` unset,
//! so the env-driven path stays covered by the CI profile_step legs) and
//! pins the renders byte-identical. It owns its process: tests here
//! flip the global enable switch, so they must not share a binary with
//! the zero-alloc pins.

use adept_infer::{serve, ExecPlan, PlanPrecision, ServeConfig};
use adept_nn::models::{proxy_cnn, Backend, InputShape};
use adept_nn::train::{train_classifier, TrainConfig};
use adept_nn::ParamStore;
use adept_tensor::set_gemm_threads;
use std::sync::Mutex;
use std::time::Duration;

/// Tests mutate process-global state (telemetry registry, GEMM thread
/// override); serialize them.
static GLOBALS: Mutex<()> = Mutex::new(());

/// One traced pass: a 2-step training run, a compiled plan, and a pinned
/// single-worker serve session over the test set.
fn traced_workload() {
    let (train, test) =
        adept_datasets::SyntheticConfig::new(adept_datasets::DatasetKind::MnistLike)
            .with_image_size(8)
            .with_classes(4)
            .with_sizes(32, 16)
            .generate(7);
    let input = InputShape::new(1, 8, 8);
    let mut store = ParamStore::new();
    let mut model = proxy_cnn(&mut store, input, 4, 4, &Backend::butterfly(4), 7);
    let cfg = TrainConfig {
        epochs: 1,
        batch_size: 16,
        ..TrainConfig::default()
    };
    train_classifier(&mut model, &mut store, &train, &test, &cfg);
    let plan = ExecPlan::compile(&model, &store, &[1, 8, 8], 4, 0, PlanPrecision::F64).unwrap();
    let n = test.len();
    let serve_cfg = ServeConfig {
        max_batch: 1,
        threads: 1,
        max_wait: Duration::from_micros(200),
        arrival_spacing: Duration::ZERO,
        queue_cap: 2 * n,
        deadline: Duration::from_secs(3600),
    };
    let (_, rep) = serve(&plan, test.images.as_slice(), n, &serve_cfg);
    assert_eq!(rep.served, n, "pinned session must serve everything");
}

#[test]
fn stable_counts_are_identical_across_gemm_thread_counts() {
    let _guard = GLOBALS.lock().unwrap();
    adept_telemetry::set_enabled(true);
    let mut renders = Vec::new();
    for threads in [1usize, 8] {
        set_gemm_threads(threads);
        adept_telemetry::reset();
        traced_workload();
        renders.push(adept_telemetry::snapshot().render_deterministic());
    }
    set_gemm_threads(0);
    adept_telemetry::set_enabled(false);
    assert_eq!(
        renders[0], renders[1],
        "stable counters/span counts diverged between 1 and 8 GEMM threads"
    );
    // The render must actually contain the cross-layer instruments — an
    // empty render would also "match".
    for needle in [
        "counter train.steps = 2",
        "counter backward.runs = 2",
        "counter mesh.weights_recorded",
        "counter plan.batches",
        "counter serve.served = 16",
        "span train_step count=2",
        "span mesh_build/record",
        "span plan/conv",
    ] {
        assert!(
            renders[0].contains(needle),
            "deterministic render lost {needle:?}:\n{}",
            renders[0]
        );
    }
}

#[test]
fn volatile_instruments_stay_out_of_the_deterministic_render() {
    let _guard = GLOBALS.lock().unwrap();
    adept_telemetry::set_enabled(true);
    set_gemm_threads(8);
    adept_telemetry::reset();
    traced_workload();
    let snap = adept_telemetry::snapshot();
    set_gemm_threads(0);
    adept_telemetry::set_enabled(false);
    let det = snap.render_deterministic();
    // Pool scheduling and batch coalescing are timing-dependent; the
    // thread-diffed render must never mention them.
    for banned in ["pool.", "serve.batches", "backward/span_replay"] {
        assert!(
            !det.contains(banned),
            "volatile instrument {banned:?} leaked into the deterministic render:\n{det}"
        );
    }
    // But the full timing render does see the pool working at 8 threads.
    let timing = snap.render_timing();
    assert!(
        timing.contains("pool.jobs_spawned"),
        "8-thread workload should have spawned pool jobs:\n{timing}"
    );
}
