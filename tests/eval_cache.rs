//! Regression pin for the evaluation-loop frozen-weight cache.
//!
//! `evaluate`/`evaluate_seeded` never update parameters, so a mesh weight
//! whose build is a pure function of its parameters (`build_tag() == 0`,
//! noise off) is identical in every batch. The loop must therefore build
//! it **once** and replay the frozen value as a constant for the remaining
//! batches — while noisy weights keep rebuilding per batch (their draws
//! are the whole point). A counting `MeshWeight` pins both sides, and an
//! accuracy equality check pins that caching never changes a result.

use adept_autodiff::{record_segment, TapeSegment, Var};
use adept_datasets::{DatasetKind, SyntheticConfig};
use adept_nn::layers::Layer;
use adept_nn::mesh::{MeshWeight, StagedBuild};
use adept_nn::models::{proxy_cnn, Backend, InputShape};
use adept_nn::train::evaluate_seeded;
use adept_nn::{build_mesh_weight, next_weight_uid, ForwardCtx, ParamId, ParamStore};
use adept_tensor::Tensor;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A linear weight that goes through the full stage → record → splice
/// engine and counts how many times its segment is recorded.
struct CountingWeight {
    uid: u64,
    id: ParamId,
    builds: AtomicUsize,
    noisy: bool,
}

impl CountingWeight {
    fn new(store: &mut ParamStore, in_f: usize, out_f: usize, noisy: bool) -> Self {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(40);
        let w = Tensor::kaiming_uniform(&mut rng, &[out_f, in_f], in_f);
        Self {
            uid: next_weight_uid(),
            id: store.register("counting.w".to_string(), w, 0.0),
            builds: AtomicUsize::new(0),
            noisy,
        }
    }
}

impl<'g> MeshWeight<'g> for CountingWeight {
    fn uid(&self) -> u64 {
        self.uid
    }

    fn param_ids(&self) -> Vec<ParamId> {
        vec![self.id]
    }

    fn noise_active(&self) -> bool {
        self.noisy
    }

    fn stage(&self, ctx: &ForwardCtx<'g, '_>) -> StagedBuild {
        StagedBuild {
            imports: vec![ctx.param(self.id).export_import()],
            ..StagedBuild::default()
        }
    }

    fn record_build_segment(&self, staged: &StagedBuild, _parallel_uv: bool) -> TapeSegment {
        self.builds.fetch_add(1, Ordering::Relaxed);
        record_segment(&staged.imports, |_g, proxies| vec![proxies[0]])
    }

    fn finish_build(&self, ctx: &ForwardCtx<'g, '_>, segment: TapeSegment) -> Var<'g> {
        ctx.graph.splice(segment)[0]
    }
}

/// Wraps the counting weight as a bias-free linear layer.
struct CountingLayer {
    weight: CountingWeight,
}

impl Layer for CountingLayer {
    fn forward<'g>(&mut self, ctx: &ForwardCtx<'g, '_>, x: Var<'g>) -> Var<'g> {
        let n = x.shape()[0];
        let features: usize = x.shape()[1..].iter().product();
        let w = build_mesh_weight(ctx, &self.weight);
        x.reshape(&[n, features]).matmul(w.transpose())
    }

    fn param_ids(&self) -> Vec<ParamId> {
        vec![self.weight.id]
    }

    fn mesh_weights<'g>(&self) -> Vec<&dyn MeshWeight<'g>> {
        vec![&self.weight]
    }
}

fn eval_data() -> adept_datasets::Dataset {
    let (_, test) = SyntheticConfig::new(DatasetKind::MnistLike)
        .with_image_size(6)
        .with_classes(3)
        .with_sizes(8, 24)
        .generate(77);
    test
}

#[test]
fn noise_free_weight_builds_once_across_eval_batches() {
    let mut store = ParamStore::new();
    let mut model = CountingLayer {
        weight: CountingWeight::new(&mut store, 36, 3, false),
    };
    let data = eval_data();
    // 24 samples / batch 8 = 3 batches; the pure weight must record once.
    evaluate_seeded(&mut model, &store, &data, 8, 1);
    let builds = model.weight.builds.load(Ordering::Relaxed);
    assert_eq!(
        builds, 1,
        "noise-free weight rebuilt {builds}× across 3 batches"
    );
}

#[test]
fn noisy_weight_still_rebuilds_every_batch() {
    let mut store = ParamStore::new();
    let mut model = CountingLayer {
        weight: CountingWeight::new(&mut store, 36, 3, true),
    };
    let data = eval_data();
    evaluate_seeded(&mut model, &store, &data, 8, 1);
    let builds = model.weight.builds.load(Ordering::Relaxed);
    assert_eq!(
        builds, 3,
        "noise-active weight must rebuild per batch, got {builds}"
    );
}

#[test]
fn cached_evaluation_matches_uncached_accuracy_bitwise() {
    // A real photonic CNN: accuracy with the cross-batch cache (multiple
    // batches) must equal the single-batch walk where nothing can be
    // cached — and a noisy model must stay deterministic per seed.
    let mut store = ParamStore::new();
    let mut model = proxy_cnn(
        &mut store,
        InputShape::new(1, 6, 6),
        4,
        3,
        &Backend::butterfly(4),
        9,
    );
    let (_, test) = SyntheticConfig::new(DatasetKind::MnistLike)
        .with_image_size(6)
        .with_classes(3)
        .with_sizes(8, 30)
        .generate(13);
    let many_batches = evaluate_seeded(&mut model, &store, &test, 10, 4);
    let one_batch = evaluate_seeded(&mut model, &store, &test, 30, 4);
    assert_eq!(many_batches, one_batch, "cache changed eval results");

    model.set_phase_noise(0.03);
    let a = evaluate_seeded(&mut model, &store, &test, 10, 4);
    let b = evaluate_seeded(&mut model, &store, &test, 10, 4);
    assert_eq!(a, b, "noisy evaluation must stay deterministic per seed");
}
