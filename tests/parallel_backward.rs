//! Bit-determinism equivalence suite for the parallel backward scheduler.
//!
//! `Graph::backward_parallel` partitions the reverse pass at the splice
//! boundaries left by the weight-build scheduler: each per-weight
//! `[stack, stack, noise, U-walk, V-walk]` segment replays its backward
//! hooks on the shared thread pool while the glue between segments — and
//! every cross-segment gradient accumulation — runs on the main thread in
//! fixed splice (layer-index) order. These tests pin the contract:
//!
//! * per-parameter gradients, loss bits and tape length are
//!   **bit-identical** between `backward` and `backward_parallel` and
//!   across thread counts {1, 2, 8};
//! * edge cases hold: nodes recorded after the loss id, `requires_grad =
//!   false` parents, prebuilt weights whose gradient is entirely `None`,
//!   noisy (variation-aware) builds, the legacy interleaved walk, and the
//!   SuperMesh search weights whose segments import differentiable frame
//!   variables.
//!
//! Gradients compare on `f64::to_bits`, so even a `-0.0` vs `0.0` flip
//! fails.

use adept::supermesh::{build_mesh_frame, prebuild_super_ptc_weights};
use adept::{SuperMeshHandles, SuperPtcWeight};
use adept_autodiff::Graph;
use adept_nn::layers::{Flatten, Layer, Sequential};
use adept_nn::onn::OnnLinear;
use adept_nn::{prebuild_mesh_weights, prebuild_ptc_weights, ForwardCtx, ParamStore};
use adept_photonics::BlockMeshTopology;
use adept_tensor::{set_gemm_threads, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Thread-count overrides are process-global; tests that flip them must
/// not interleave with each other.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    adept_telemetry::sync::lock_recover(&THREAD_OVERRIDE)
}

fn grad_bits(g: &Tensor) -> Vec<u64> {
    g.as_slice().iter().map(|x| x.to_bits()).collect()
}

/// One training-style step returning (tape length, loss bits, sorted
/// per-parameter gradient bit patterns).
fn run_step(
    model: &mut dyn Layer,
    store: &ParamStore,
    x: &Tensor,
    labels: &[usize],
    seed: u64,
    threads: usize,
    prebuild: bool,
    parallel_backward: bool,
) -> (usize, u64, Vec<(String, Vec<u64>)>) {
    set_gemm_threads(threads);
    let graph = Graph::new();
    let ctx = ForwardCtx::new(&graph, store, true, seed);
    if prebuild {
        prebuild_mesh_weights(&ctx, &model.mesh_weights());
    }
    let xv = graph.constant(x.clone());
    let logits = model.forward(&ctx, xv);
    let loss = logits.cross_entropy_logits(labels);
    let loss_bits = loss.value().item().to_bits();
    let tape_len = graph.len();
    let grads = if parallel_backward {
        graph.backward_parallel(loss)
    } else {
        graph.backward(loss)
    };
    let mut per_param: Vec<(String, Vec<u64>)> = ctx
        .into_param_grads(&grads)
        .into_iter()
        .map(|(id, g)| (store.name(id).to_string(), grad_bits(&g)))
        .collect();
    per_param.sort_by(|a, b| a.0.cmp(&b.0));
    set_gemm_threads(0);
    (tape_len, loss_bits, per_param)
}

fn assert_grads_identical(a: &[(String, Vec<u64>)], b: &[(String, Vec<u64>)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: parameter sets differ");
    for ((name_a, ga), (name_b, gb)) in a.iter().zip(b) {
        assert_eq!(name_a, name_b, "{what}: parameter order");
        assert_eq!(ga, gb, "{what}: gradient bits of {name_a} diverge");
    }
}

/// A 3-layer ONN MLP with ragged feature counts (cropped edge tiles on
/// every layer for K = 4).
fn ragged_mlp(store: &mut ParamStore, noise: f64) -> Sequential {
    let topo = BlockMeshTopology::butterfly(4);
    let mut model = Sequential::new();
    model.push(Flatten);
    for (i, (inf, outf)) in [(10usize, 9usize), (9, 7), (7, 3)].iter().enumerate() {
        let mut layer = OnnLinear::new(
            store,
            &format!("fc{i}"),
            *inf,
            *outf,
            topo.clone(),
            topo.clone(),
            160 + i as u64,
        );
        layer.weight.phase_noise_std = noise;
        model.push(layer);
    }
    model
}

fn blob_input(n: usize, dim: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Tensor::rand_uniform(&mut rng, &[n, 1, 1, dim], -1.0, 1.0);
    let labels = (0..n).map(|i| i % 3).collect();
    (x, labels)
}

#[test]
fn parallel_backward_bit_identical_across_thread_counts() {
    let _guard = lock();
    let mut store = ParamStore::new();
    let mut model = ragged_mlp(&mut store, 0.0);
    let (x, labels) = blob_input(6, 10, 1);
    let (len_s, loss_s, grads_s) = run_step(&mut model, &store, &x, &labels, 7, 1, true, false);
    for threads in [1usize, 2, 8] {
        let (len_p, loss_p, grads_p) =
            run_step(&mut model, &store, &x, &labels, 7, threads, true, true);
        assert_eq!(len_s, len_p, "tape length at {threads} threads");
        assert_eq!(loss_s, loss_p, "loss bits at {threads} threads");
        assert_grads_identical(
            &grads_s,
            &grads_p,
            &format!("parallel at {threads} threads"),
        );
    }
}

#[test]
fn noisy_builds_backward_identically_in_parallel() {
    // Variation-aware training: the noise constants inside the replayed
    // segments are `requires_grad = false` parents — workers must swallow
    // their contributions exactly like the serial walk.
    let _guard = lock();
    let mut store = ParamStore::new();
    let mut model = ragged_mlp(&mut store, 0.03);
    let (x, labels) = blob_input(4, 10, 3);
    let (_, loss_s, grads_s) = run_step(&mut model, &store, &x, &labels, 11, 1, true, false);
    for threads in [2usize, 8] {
        let (_, loss_p, grads_p) =
            run_step(&mut model, &store, &x, &labels, 11, threads, true, true);
        assert_eq!(loss_s, loss_p, "noisy loss at {threads} threads");
        assert_grads_identical(&grads_s, &grads_p, "noisy parallel backward");
    }
}

#[test]
fn legacy_interleaved_walk_backward_matches_serial() {
    // Without the prebuild scheduler each layer's parameter leaves sit
    // *between* the spliced segments, so only a prefix of spans is
    // eligible for off-thread replay — the mixed span/glue path must still
    // be bit-identical.
    let _guard = lock();
    let mut store = ParamStore::new();
    let mut model = ragged_mlp(&mut store, 0.0);
    let (x, labels) = blob_input(5, 10, 2);
    let (_, loss_s, grads_s) = run_step(&mut model, &store, &x, &labels, 3, 1, false, false);
    for threads in [2usize, 8] {
        let (_, loss_p, grads_p) =
            run_step(&mut model, &store, &x, &labels, 3, threads, false, true);
        assert_eq!(loss_s, loss_p, "legacy-walk loss at {threads} threads");
        assert_grads_identical(&grads_s, &grads_p, "legacy-walk parallel backward");
    }
}

#[test]
fn nodes_recorded_after_the_loss_are_ignored() {
    // A second forward pass (including a whole prebuilt weight rebuild)
    // recorded after the loss: `backward_parallel` must replay exactly the
    // prefix the serial walk replays.
    let _guard = lock();
    let mut store = ParamStore::new();
    let mut model = ragged_mlp(&mut store, 0.0);
    let (x, labels) = blob_input(4, 10, 5);
    let mut step = |threads: usize, parallel: bool| -> (u64, Vec<(String, Vec<u64>)>) {
        set_gemm_threads(threads);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 9);
        prebuild_mesh_weights(&ctx, &model.mesh_weights());
        let xv = graph.constant(x.clone());
        let logits = model.forward(&ctx, xv);
        let loss = logits.cross_entropy_logits(&labels);
        // Recorded after the loss id: more spliced segments plus glue.
        let xv2 = graph.constant(x.clone());
        let extra = model.forward(&ctx, xv2);
        let _ = extra.square().sum();
        let grads = if parallel {
            graph.backward_parallel(loss)
        } else {
            graph.backward(loss)
        };
        let mut per_param: Vec<(String, Vec<u64>)> = ctx
            .into_param_grads(&grads)
            .into_iter()
            .map(|(id, g)| (store.name(id).to_string(), grad_bits(&g)))
            .collect();
        per_param.sort_by(|a, b| a.0.cmp(&b.0));
        set_gemm_threads(0);
        (loss.value().item().to_bits(), per_param)
    };
    let (loss_s, grads_s) = step(1, false);
    for threads in [2usize, 8] {
        let (loss_p, grads_p) = step(threads, true);
        assert_eq!(loss_s, loss_p, "post-loss nodes at {threads} threads");
        assert_grads_identical(&grads_s, &grads_p, "post-loss parallel backward");
    }
}

#[test]
fn gradient_free_segments_are_skipped_identically() {
    // Two weights are prebuilt but the loss only consumes the first: the
    // second span's incoming gradient is entirely `None`, so neither
    // replay may produce gradients for its parameters.
    let _guard = lock();
    let mut store = ParamStore::new();
    let topo = BlockMeshTopology::butterfly(4);
    let used = OnnLinear::new(&mut store, "used", 8, 6, topo.clone(), topo.clone(), 20);
    let unused = OnnLinear::new(&mut store, "unused", 8, 6, topo.clone(), topo, 21);
    let mut rng = StdRng::seed_from_u64(6);
    let x = Tensor::rand_uniform(&mut rng, &[3, 8], -1.0, 1.0);
    let step = |threads: usize, parallel: bool| -> Vec<(String, Vec<u64>)> {
        set_gemm_threads(threads);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 2);
        prebuild_ptc_weights(&ctx, &[&used.weight, &unused.weight]);
        let w = used.weight.build(&ctx);
        let _w2 = unused.weight.build(&ctx);
        let loss = graph
            .constant(x.clone())
            .matmul(w.transpose())
            .square()
            .sum();
        let grads = if parallel {
            graph.backward_parallel(loss)
        } else {
            graph.backward(loss)
        };
        let mut per_param: Vec<(String, Vec<u64>)> = ctx
            .into_param_grads(&grads)
            .into_iter()
            .map(|(id, g)| (store.name(id).to_string(), grad_bits(&g)))
            .collect();
        per_param.sort_by(|a, b| a.0.cmp(&b.0));
        set_gemm_threads(0);
        per_param
    };
    let grads_s = step(1, false);
    assert!(
        grads_s.iter().all(|(name, _)| !name.starts_with("unused")),
        "unused weight must receive no gradient"
    );
    for threads in [2usize, 8] {
        let grads_p = step(threads, true);
        assert_grads_identical(&grads_s, &grads_p, "gradient-free segment");
    }
}

#[test]
fn super_weight_backward_replays_identically() {
    // Search weights import *differentiable* frame variables (relaxed
    // permutations, binarized couplers, Gumbel gates) into their spliced
    // segments: the deferred merge must deliver every span's frame
    // contributions in splice order, bit for bit.
    let _guard = lock();
    let mut store = ParamStore::new();
    let h = SuperMeshHandles::register(&mut store, 4, 3, 1, 1);
    let w1 = SuperPtcWeight::new(&mut store, "w1", 6, 5, 4, 3, 70);
    let w2 = SuperPtcWeight::new(&mut store, "w2", 9, 7, 4, 3, 71);
    let step = |threads: usize, parallel: bool| -> (usize, u64, Vec<(String, Vec<u64>)>) {
        set_gemm_threads(threads);
        let graph = Graph::new();
        let ctx = ForwardCtx::new(&graph, &store, true, 5);
        let fu = build_mesh_frame(&ctx, &h.u, 4, &[[0.2, -0.1]; 3], 0.8);
        let fv = build_mesh_frame(&ctx, &h.v, 4, &[[0.1, 0.3]; 3], 0.8);
        prebuild_super_ptc_weights(&ctx, &[&w1, &w2], &fu, &fv);
        let b1 = w1.build(&ctx, &fu, &fv);
        let b2 = w2.build(&ctx, &fu, &fv);
        let loss = b1.square().sum().add(b2.square().sum());
        let loss_bits = loss.value().item().to_bits();
        let tape_len = graph.len();
        let grads = if parallel {
            graph.backward_parallel(loss)
        } else {
            graph.backward(loss)
        };
        let mut per_param: Vec<(String, Vec<u64>)> = ctx
            .into_param_grads(&grads)
            .into_iter()
            .map(|(id, g)| (store.name(id).to_string(), grad_bits(&g)))
            .collect();
        per_param.sort_by(|a, b| a.0.cmp(&b.0));
        set_gemm_threads(0);
        (tape_len, loss_bits, per_param)
    };
    let (len_s, loss_s, grads_s) = step(1, false);
    for threads in [1usize, 2, 8] {
        let (len_p, loss_p, grads_p) = step(threads, true);
        assert_eq!(len_s, len_p, "super tape length at {threads} threads");
        assert_eq!(loss_s, loss_p, "super loss bits at {threads} threads");
        assert_grads_identical(&grads_s, &grads_p, &format!("super at {threads} threads"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random layer stacks / shapes / K / noise / thread counts: the
    /// parallel backward replays to the same tape length, loss bits and
    /// per-parameter gradient bytes as the serial replay.
    #[test]
    fn random_models_backward_bit_identically(
        seed in 0u64..1000,
        n_layers in 1usize..4,
        k_choice in 0usize..2,
        noisy in prop_oneof![Just(false), Just(true)],
        threads in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let _guard = lock();
        let k = [4usize, 8][k_choice];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dims = Vec::with_capacity(n_layers + 1);
        for _ in 0..=n_layers {
            dims.push(2 + (rand::Rng::gen_range(&mut rng, 0..18usize)));
        }
        let classes = *dims.last().unwrap();
        let topo = BlockMeshTopology::butterfly(k);
        let mut store = ParamStore::new();
        let mut model = Sequential::new();
        model.push(Flatten);
        for i in 0..n_layers {
            let mut layer = OnnLinear::new(
                &mut store,
                &format!("l{i}"),
                dims[i],
                dims[i + 1],
                topo.clone(),
                topo.clone(),
                seed.wrapping_mul(37).wrapping_add(i as u64),
            );
            if noisy {
                layer.weight.phase_noise_std = 0.02;
            }
            model.push(layer);
        }
        let n = 3;
        let x = Tensor::rand_uniform(&mut rng, &[n, 1, 1, dims[0]], -1.0, 1.0);
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        let (len_s, loss_s, grads_s) =
            run_step(&mut model, &store, &x, &labels, seed, 1, true, false);
        let (len_p, loss_p, grads_p) =
            run_step(&mut model, &store, &x, &labels, seed, threads, true, true);
        prop_assert_eq!(len_s, len_p, "tape length");
        prop_assert_eq!(loss_s, loss_p, "loss bits");
        assert_grads_identical(&grads_s, &grads_p, "proptest parallel backward");
    }
}
