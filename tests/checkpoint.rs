//! Cross-process fidelity of the trained-design checkpoint subsystem.
//!
//! `adept_nn::save_backend` / `load_backend` promise that a design frozen
//! to disk reproduces the saving process **bit for bit**: tape forwards,
//! compiled `ExecPlan` outputs (clean and faulted), at any GEMM thread
//! count. Each round trip here goes through the real text file — write,
//! reread, reparse — so everything the in-memory structs carry has to
//! survive serialization. Rejection paths (corruption, truncation, version
//! bumps, architecture mismatch) are pinned to actionable errors rather
//! than garbage loads.

use adept::search::{search, AdeptConfig};
use adept_autodiff::Graph;
use adept_datasets::{DatasetKind, SyntheticConfig};
use adept_infer::{ExecPlan, PlanFromCheckpointError, PlanPrecision};
use adept_nn::layers::{Layer, Sequential};
use adept_nn::models::{proxy_cnn, Backend, InputShape};
use adept_nn::train::{train_classifier, TrainConfig};
use adept_nn::{
    load_backend, prebuild_mesh_weights, save_backend, Checkpoint, ForwardCtx, ModelArch,
    ParamStore,
};
use adept_photonics::{DeviceSpec, FaultKind, FaultScenario, Pdk};
use adept_tensor::{set_gemm_threads, Tensor};
use std::path::PathBuf;
use std::sync::Mutex;

/// Unique scratch path per test (no tempfile crate in this environment).
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adept-ckpt-{}-{tag}.ckpt", std::process::id()))
}

/// Tests mutate the global GEMM thread override; serialize them.
static THREAD_OVERRIDE: Mutex<()> = Mutex::new(());

fn synth_input(elems: usize) -> Vec<f64> {
    (0..elems)
        .map(|i| ((i * 37 + 11) % 101) as f64 / 50.5 - 1.0)
        .collect()
}

/// The tape forward `evaluate_seeded`'s first batch would run.
fn tape_forward(model: &mut dyn Layer, store: &ParamStore, x: Tensor, seed: u64) -> Tensor {
    let graph = Graph::new();
    let ctx = ForwardCtx::new(&graph, store, false, seed);
    prebuild_mesh_weights(&ctx, &model.mesh_weights());
    let x = graph.constant(x);
    model.forward(&ctx, x).value()
}

/// Trains a tiny proxy CNN on `backend` (2 epochs — enough to move every
/// parameter and the BN running stats off their initial values), captures
/// it, and returns model, store and checkpoint.
fn trained(
    backend: &Backend,
    arch_seed: u64,
    fault: Option<&FaultScenario>,
) -> (Sequential, ParamStore, Checkpoint) {
    let image = 8;
    let (classes, channels) = (3, 2);
    let (train, test) = SyntheticConfig::new(DatasetKind::MnistLike)
        .with_image_size(image)
        .with_classes(classes)
        .with_sizes(48, 24)
        .generate(11);
    let input = InputShape::new(1, image, image);
    let mut store = ParamStore::new();
    let mut model = proxy_cnn(&mut store, input, channels, classes, backend, arch_seed);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        ..TrainConfig::default()
    };
    train_classifier(&mut model, &mut store, &train, &test, &cfg);
    let ckpt = Checkpoint::capture(
        ModelArch::ProxyCnn {
            input,
            channels,
            classes,
            seed: arch_seed,
        },
        backend,
        &model,
        &store,
        13,
        fault,
    );
    (model, store, ckpt)
}

/// Saves `ckpt` to disk, reloads it, and asserts the reloaded design
/// reproduces the original's tape forward and compiled-plan outputs
/// bit-for-bit at 1 and 8 GEMM threads.
fn assert_round_trip(tag: &str, model: &mut Sequential, store: &ParamStore, ckpt: &Checkpoint) {
    let path = scratch(tag);
    save_backend(&path, ckpt).unwrap();
    let loaded = load_backend(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.arch, ckpt.arch);
    assert_eq!(loaded.noise_seed, ckpt.noise_seed);

    let (mut re_model, re_store) = loaded.instantiate().unwrap();
    let shape = loaded.sample_shape();
    let elems: usize = shape.iter().product();
    let n = 3;
    let input = synth_input(n * elems);
    let mut tape_shape = vec![n];
    tape_shape.extend_from_slice(&shape);

    let _guard = adept_telemetry::sync::lock_recover(&THREAD_OVERRIDE);
    for threads in [1usize, 8] {
        set_gemm_threads(threads);
        let want = tape_forward(
            model,
            store,
            Tensor::from_vec(input.clone(), &tape_shape),
            ckpt.noise_seed,
        );
        let got = tape_forward(
            &mut re_model,
            &re_store,
            Tensor::from_vec(input.clone(), &tape_shape),
            ckpt.noise_seed,
        );
        for (i, (&w, &g)) in want.as_slice().iter().zip(got.as_slice()).enumerate() {
            assert!(
                w.to_bits() == g.to_bits(),
                "{tag} threads={threads} tape elem {i}: {w:?} vs {g:?}"
            );
        }

        let mut plan =
            ExecPlan::compile(model, store, &shape, n, ckpt.noise_seed, PlanPrecision::F64)
                .unwrap();
        let mut re_plan = ExecPlan::compile(
            &re_model,
            &re_store,
            &shape,
            n,
            ckpt.noise_seed,
            PlanPrecision::F64,
        )
        .unwrap();
        let mut want = vec![0.0; n * plan.output_features()];
        let mut got = vec![0.0; n * re_plan.output_features()];
        plan.run_batch(&input, n, &mut want);
        re_plan.run_batch(&input, n, &mut got);
        for (i, (&w, &g)) in want.iter().zip(&got).enumerate() {
            assert!(
                w.to_bits() == g.to_bits(),
                "{tag} threads={threads} plan elem {i}: {w:?} vs {g:?}"
            );
        }
    }
    set_gemm_threads(0);
}

#[test]
fn dense_mzi_round_trip_is_bit_identical() {
    let (mut model, store, ckpt) = trained(&Backend::Mzi { k: 4 }, 7, None);
    assert_round_trip("mzi", &mut model, &store, &ckpt);
}

#[test]
fn butterfly_round_trip_is_bit_identical() {
    let (mut model, store, ckpt) = trained(&Backend::butterfly(4), 9, None);
    assert_round_trip("butterfly", &mut model, &store, &ckpt);
}

#[test]
fn frozen_search_outcome_round_trips() {
    let mut cfg = AdeptConfig::quick(8, Pdk::amf(), 240.0, 300.0);
    cfg.epochs = 3;
    cfg.warmup_epochs = 1;
    cfg.spl_epoch = 2;
    cfg.n_train = 32;
    cfg.n_test = 16;
    cfg.image_size = 8;
    cfg.channels = 4;
    cfg.classes = 4;
    cfg.max_blocks_per_side = 4;
    cfg.seed = 5;
    let outcome = search(&cfg);
    let input = InputShape::new(1, 8, 8);
    let mut store = ParamStore::new();
    let mut model = outcome.frozen_proxy_cnn(&mut store, input, 4, 4, 17);
    let ckpt = outcome.freeze_checkpoint(&model, &store, input, 4, 4, 17, 29, None);
    match &ckpt.backend {
        Backend::Topology { .. } => {}
        Backend::Mzi { .. } => panic!("searched design should freeze a topology backend"),
    }
    assert_round_trip("search", &mut model, &store, &ckpt);
}

#[test]
fn faulted_plan_compiles_from_checkpoint_bit_identical() {
    let fault = FaultScenario::new(3)
        .with(FaultKind::DeadShifter { p: 0.05 })
        .with(FaultKind::StuckShifter {
            p: 0.02,
            theta: 0.7,
        })
        .with(FaultKind::PhaseQuantization { bits: 7 });
    let (model, store, ckpt) = trained(&Backend::butterfly(4), 21, Some(&fault));
    let path = scratch("faulted");
    save_backend(&path, &ckpt).unwrap();

    let shape = ckpt.sample_shape();
    let elems: usize = shape.iter().product();
    let n = 4;
    let input = synth_input(n * elems);

    let _guard = adept_telemetry::sync::lock_recover(&THREAD_OVERRIDE);
    for threads in [1usize, 8] {
        set_gemm_threads(threads);
        let mut direct = ExecPlan::compile_faulted(
            &model,
            &store,
            &shape,
            n,
            ckpt.noise_seed,
            Some(std::sync::Arc::new(fault.clone())),
            PlanPrecision::F64,
        )
        .unwrap();
        let (mut from_file, reloaded) =
            ExecPlan::compile_from_checkpoint(&path, n, PlanPrecision::F64).unwrap();
        assert_eq!(
            reloaded.fault.as_ref().map(FaultScenario::fingerprint),
            Some(fault.fingerprint()),
            "fault scenario must survive the file"
        );
        let mut want = vec![0.0; n * direct.output_features()];
        let mut got = vec![0.0; n * from_file.output_features()];
        direct.run_batch(&input, n, &mut want);
        from_file.run_batch(&input, n, &mut got);
        for (i, (&w, &g)) in want.iter().zip(&got).enumerate() {
            assert!(
                w.to_bits() == g.to_bits(),
                "threads={threads} faulted elem {i}: {w:?} vs {g:?}"
            );
        }
    }
    set_gemm_threads(0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_and_truncated_files_are_rejected() {
    let (_, _, ckpt) = trained(&Backend::Mzi { k: 4 }, 3, None);
    let path = scratch("reject");
    save_backend(&path, &ckpt).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();

    // Flip a payload hex digit: the trailing checksum catches it.
    let pos = text.find(" 3f").or_else(|| text.find(" bf")).unwrap();
    let mut corrupted = text.clone();
    corrupted.replace_range(pos..pos + 3, " 40");
    std::fs::write(&path, &corrupted).unwrap();
    let err = load_backend(&path).err().unwrap();
    assert!(err.message.contains("checksum mismatch"), "{err}");

    // Cut the file short: truncation is named, not a parse crash.
    std::fs::write(&path, &text[..text.len() * 2 / 3]).unwrap();
    let err = load_backend(&path).err().unwrap();
    assert!(err.message.contains("truncated"), "{err}");

    // Future version: refused with the version named.
    let bumped = text.replace("adept-checkpoint v1", "adept-checkpoint v2");
    std::fs::write(&path, &bumped).unwrap();
    let err = load_backend(&path).err().unwrap();
    assert!(
        err.message.contains("unsupported checkpoint version `v2`"),
        "{err}"
    );

    // Not a checkpoint at all.
    std::fs::write(&path, "[device]\nname = \"nope\"\n").unwrap();
    let err = load_backend(&path).err().unwrap();
    assert!(err.message.contains("not an adept checkpoint"), "{err}");
    assert_eq!(err.line, 1);

    // Missing file: I/O failure carries the path.
    std::fs::remove_file(&path).ok();
    let err = load_backend(&path).err().unwrap();
    assert!(err.message.contains("cannot read"), "{err}");

    // compile_from_checkpoint surfaces the same checkpoint errors.
    match ExecPlan::compile_from_checkpoint(&path, 4, PlanPrecision::F64) {
        Err(PlanFromCheckpointError::Checkpoint(e)) => {
            assert!(e.message.contains("cannot read"), "{e}")
        }
        Err(e) => panic!("wrong error kind: {e}"),
        Ok(_) => panic!("missing file must not compile"),
    }
}

#[test]
fn shipped_device_specs_load_and_back_models() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/registry/devices");
    let mut loaded = 0usize;
    for entry in std::fs::read_dir(dir).expect("registry/devices ships with the repo") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let spec = DeviceSpec::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!spec.name.is_empty());
        // Every shipped spec must produce a usable backend: build a tiny
        // model on it and push one batch through a compiled plan.
        let backend = Backend::from_device(&spec);
        let mut store = ParamStore::new();
        let model = proxy_cnn(&mut store, InputShape::new(1, 6, 6), 2, 3, &backend, 1);
        let mut plan =
            ExecPlan::compile(&model, &store, &[1, 6, 6], 1, 0, PlanPrecision::F64).unwrap();
        let input = synth_input(36);
        let mut out = vec![0.0; plan.output_features()];
        plan.run_batch(&input, 1, &mut out);
        assert!(out.iter().all(|v| v.is_finite()), "{}", path.display());
        loaded += 1;
    }
    assert!(loaded >= 2, "expected at least two shipped device specs");
}
