//! Train an FFT-ONN butterfly classifier through the unified `MeshWeight`
//! build engine and compare its hardware cost against the universal
//! (Clements-style dense) MZI mesh.
//!
//! The butterfly PTC reaches full port connectivity in `log2(k)` stages, so
//! it needs far fewer devices than the `O(k)`-depth universal mesh — that's
//! the structured low-cost design point between "fully dense" and
//! "searched". Since the mesh-weight redesign, its trainable weights walk
//! the exact same batched `[T, B, K]` builder and parallel
//! stage→record→splice scheduler as every other block topology.
//!
//! Run with: `cargo run --release --example butterfly_onn`

use adept_datasets::{DatasetKind, SyntheticConfig};
use adept_nn::layers::Layer;
use adept_nn::models::{proxy_cnn, Backend, InputShape};
use adept_nn::train::{train_classifier, TrainConfig};
use adept_nn::ParamStore;
use adept_photonics::{DeviceCount, Pdk};

fn main() {
    let k = 8;

    // 1. A small MNIST-like task (CPU-friendly; structure as in the paper's
    //    proxy setup).
    let data_cfg = SyntheticConfig::new(DatasetKind::MnistLike)
        .with_sizes(192, 96)
        .with_image_size(8)
        .with_classes(4);
    let (train, test) = data_cfg.generate(7);

    // 2. The proxy CNN on the butterfly backend: every conv/FC weight is a
    //    PTC whose U and V unitaries walk the log2(k)-stage butterfly.
    let mut store = ParamStore::new();
    let backend = Backend::butterfly(k);
    let mut model = proxy_cnn(&mut store, InputShape::new(1, 8, 8), 4, 4, &backend, 1);

    // 3. Train through the unified engine (every step prebuilds all mesh
    //    weights through the single stage→record→splice scheduler).
    let cfg = TrainConfig {
        epochs: 8,
        batch_size: 24,
        lr: 5e-3,
        seed: 0,
        phase_noise_std: 0.0,
        fault: None,
    };
    let report = train_classifier(&mut model, &mut store, &train, &test, &cfg);
    println!(
        "butterfly-ONN proxy CNN: test accuracy {:.1}% (final loss {:.4})",
        100.0 * report.test_accuracy,
        report.final_loss
    );

    // 4. Hardware cost: the butterfly PTC vs the dense Clements-style MZI
    //    mesh at the same k (both counts cover the U and V unitaries).
    let butterfly = model
        .device_count()
        .expect("photonic layers report a PTC device count");
    let mzi = DeviceCount::mzi_ptc(k);
    let pdk = Pdk::amf();
    println!("device count per {k}x{k} PTC (U + V unitaries):");
    println!(
        "  butterfly: {:3} PS {:3} DC {:4} CR {:2} blocks  ({:.0} kum2 on {})",
        butterfly.ps,
        butterfly.dc,
        butterfly.cr,
        butterfly.blocks,
        butterfly.footprint_kum2(&pdk),
        pdk.name
    );
    println!(
        "  MZI dense: {:3} PS {:3} DC {:4} CR {:2} blocks  ({:.0} kum2 on {})",
        mzi.ps,
        mzi.dc,
        mzi.cr,
        mzi.blocks,
        mzi.footprint_kum2(&pdk),
        pdk.name
    );
    println!(
        "  footprint ratio (MZI / butterfly): {:.2}x",
        mzi.footprint_kum2(&pdk) / butterfly.footprint_kum2(&pdk)
    );
}
