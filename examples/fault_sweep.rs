//! Robustness sweep: proxy-CNN accuracy across dead-shifter probability ×
//! frozen phase noise × PTC topology, plus the fault-aware retraining
//! recovery experiment.
//!
//! ```text
//! cargo run --release --example fault_sweep            # repro grid
//! cargo run --release --example fault_sweep -- --fast  # reduced CI grid
//! cargo run --release --example fault_sweep -- --scale full
//! cargo run --release --example fault_sweep -- --device registry/devices/amf_butterfly8.toml
//! ```
//!
//! `--device <spec>` adds a registry device's topology to the sweep grid
//! under its declared name, alongside the built-in baselines.
//!
//! Everything printed to **stdout** is seeded and bit-stable across
//! `ONN_THREADS` — CI diffs it across {1, 8, default} — *except* the two
//! trailing per-cell latency columns (p50/p99 `run_batch` µs), which are
//! wall-clock timing; CI strips those last two pipe-separated fields
//! before comparing legs. Other timings go to stderr. The grid is also
//! written to `crates/bench/BENCH_robustness.json` next to the other
//! bench artifacts.

use adept_bench::sweep::{robustness_json, run_sweep, SweepSettings};
use adept_bench::Scale;
use adept_nn::models::Backend;
use adept_photonics::DeviceSpec;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let settings = if fast {
        SweepSettings::reduced()
    } else {
        SweepSettings::for_scale(Scale::from_args())
    };
    let mut topologies = vec![
        ("butterfly8".to_string(), Backend::butterfly(8)),
        ("dense8x4".to_string(), Backend::dense(8, 4)),
    ];
    if let Some(i) = args.iter().position(|a| a == "--device") {
        let path = args.get(i + 1).unwrap_or_else(|| {
            eprintln!("error: --device needs a spec path");
            std::process::exit(2);
        });
        match DeviceSpec::load(path) {
            Ok(spec) => topologies.push((spec.name.clone(), Backend::from_device(&spec))),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    println!("fault sweep: dead shifters x frozen phase noise x topology");
    println!(
        "grid: {} topologies x {} fault levels x {} noise levels, seed {}",
        topologies.len(),
        settings.fault_levels.len(),
        settings.noise_levels.len(),
        settings.seed
    );

    let started = Instant::now();
    let outcome = run_sweep(&topologies, &settings);
    eprintln!("sweep completed in {:.1?}", started.elapsed());

    for t in &outcome.topologies {
        println!(
            "\n{} | clean {:.4}% | footprint {:.1} kum^2 | PS/DC/CR/Blk {}/{}/{}/{}",
            t.name,
            t.clean_accuracy_pct,
            t.footprint_kum2,
            t.counts.ps,
            t.counts.dc,
            t.counts.cr,
            t.counts.blocks
        );
        println!(
            "{:>8} | {:>8} | {:>8} | {:>10} | {:>10}",
            "fault_p", "noise", "acc(%)", "p50(us)", "p99(us)"
        );
        for c in outcome.cells.iter().filter(|c| c.topology == t.name) {
            println!(
                "{:>8.3} | {:>8.3} | {:>8.4} | {:>10.1} | {:>10.1}",
                c.fault_p, c.noise_std, c.accuracy_pct, c.p50_batch_us, c.p99_batch_us
            );
        }
    }

    let r = &outcome.recovery;
    println!(
        "\nrecovery on {} at p={:.2} dead shifters: clean {:.4}% -> damaged {:.4}% -> retrained {:.4}%",
        r.topology, r.fault_p, r.clean_pct, r.faulted_pct, r.retrained_pct
    );

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/bench/BENCH_robustness.json"
    );
    std::fs::write(path, robustness_json(&outcome)).expect("write robustness json");
    println!("wrote BENCH_robustness.json");
}
