//! Quickstart: search a photonic tensor core topology under a footprint
//! budget, inspect the design, then train an ONN with it.
//!
//! Run with: `cargo run --release --example quickstart`

use adept::search::{search, AdeptConfig};
use adept_bench as _;
use adept_datasets::DatasetKind;
use adept_nn::models::Backend;
use adept_photonics::Pdk;

fn main() {
    // 1. Pick a PDK and a footprint window (in 1000 µm², like the paper's
    //    Table 1 "a1" target for an 8×8 core).
    let pdk = Pdk::amf();
    let (f_min, f_max) = (240.0, 300.0);

    // 2. Search. `quick` is a CPU-friendly schedule; `paper_like` matches
    //    the paper's 90-epoch flow.
    let mut cfg = AdeptConfig::quick(8, pdk.clone(), f_min, f_max);
    cfg.seed = 42;
    let outcome = search(&cfg);

    println!(
        "analytic block bounds (Eq. 16): B ∈ [{}, {}]",
        outcome.b_min, outcome.b_max
    );
    let d = &outcome.design;
    println!(
        "searched design: {} blocks, #CR={}, #DC={}, #PS={}",
        d.device_count.blocks, d.device_count.cr, d.device_count.dc, d.device_count.ps
    );
    println!(
        "footprint: {:.0} kµm² (window [{f_min:.0}, {f_max:.0}] kµm² on {})",
        d.footprint_kum2, pdk.name
    );
    for (i, b) in d.topo_u.blocks().iter().enumerate() {
        println!(
            "  U block {i}: dc_start={} couplers={:?} crossings={}",
            b.dc_start,
            b.couplers.iter().map(|&c| c as u8).collect::<Vec<_>>(),
            b.perm.crossing_count()
        );
    }

    // 3. Train an ONN that uses the searched core for every layer
    //    (variation-aware, like the paper's retraining stage).
    let settings = adept_bench::RetrainSettings::for_scale(adept_bench::Scale::Repro);
    let backend = outcome.backend();
    let result = adept_bench::retrain(
        adept_bench::ModelKind::Proxy,
        DatasetKind::MnistLike,
        &backend,
        &settings,
        42,
    );
    println!(
        "\nretrained proxy-CNN accuracy: {:.1}%",
        result.accuracy_pct
    );

    // 4. Compare against the hand-designed FFT-ONN butterfly at its own
    //    (fixed) footprint.
    let fft = adept_bench::retrain(
        adept_bench::ModelKind::Proxy,
        DatasetKind::MnistLike,
        &Backend::butterfly(8),
        &settings,
        42,
    );
    let fft_fp = adept_bench::fft_counts(8).footprint_kum2(&pdk);
    println!(
        "FFT-ONN baseline: {:.1}% at {:.0} kµm² (searched: {:.1}% at {:.0} kµm²)",
        fft.accuracy_pct, fft_fp, result.accuracy_pct, d.footprint_kum2
    );
}
