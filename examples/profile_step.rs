//! Telemetry profile of one train → compile → serve pass.
//!
//! ```text
//! cargo run --release --example profile_step            # text renders
//! cargo run --release --example profile_step -- --json  # JSON dump
//! ONN_TELEMETRY=1 ONN_THREADS=8 cargo run --release --example profile_step
//! ```
//!
//! Trains the proxy CNN for a few steps with `adept_telemetry` enabled
//! (the example turns it on itself when `ONN_TELEMETRY` is unset — it
//! exists to profile), compiles the model into an [`ExecPlan`], serves a
//! small request stream, then prints one [`TelemetrySnapshot`]:
//!
//! * **stdout** — the deterministic render: *stable* counters and span
//!   counts only. Counts, never durations. The serve session is pinned to
//!   `max_batch = 1, threads = 1` with an explicit queue capacity, so
//!   batch formation cannot vary — CI diffs this stdout across
//!   `ONN_THREADS` ∈ {1, 8, default} and it must be byte-identical.
//! * **stderr** — the timing render plus a fixed per-phase table (mesh
//!   stage/record/splice, backward glue-sweep/span-replay, optimizer).
//!   Durations are machine-dependent; rows for phases that never ran at
//!   this thread count (e.g. span-replay at `ONN_THREADS=1`) print zeros.
//!
//! `--json` replaces both text renders with the JSON-ish dump on stdout
//! (not diffed by CI: it includes durations).

use adept_infer::{serve, ExecPlan, PlanPrecision, ServeConfig};
use adept_nn::models::{proxy_cnn, Backend, InputShape};
use adept_nn::train::{train_classifier, TrainConfig};
use adept_nn::ParamStore;
use adept_telemetry::TelemetrySnapshot;
use std::time::Duration;

fn synthetic() -> (adept_datasets::Dataset, adept_datasets::Dataset) {
    adept_datasets::SyntheticConfig::new(adept_datasets::DatasetKind::MnistLike)
        .with_image_size(8)
        .with_classes(4)
        .with_sizes(128, 64)
        .generate(42)
}

/// One row of the fixed phase table: total/max over `count` span hits.
fn phase_row(snap: &TelemetrySnapshot, label: &str, path: &str) -> String {
    let (count, total_ns, max_ns) = snap
        .spans
        .iter()
        .find(|s| s.path == path)
        .map_or((0, 0, 0), |s| (s.count, s.total_ns, s.max_ns));
    format!(
        "{label:>12} | {count:>6} | {:>10.3} ms | {:>10.3} ms",
        total_ns as f64 / 1e6,
        max_ns as f64 / 1e6,
    )
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    if !adept_telemetry::enabled() {
        adept_telemetry::set_enabled(true);
        eprintln!("telemetry: enabled programmatically (ONN_TELEMETRY unset)");
    }

    // 1. A few traced training steps: 128 samples / batch 16 / 2 epochs
    //    = 16 train_step spans, each with prebuild/forward/loss/backward/
    //    optimizer children.
    let (train, test) = synthetic();
    let image = 8;
    let input = InputShape::new(1, image, image);
    let mut store = ParamStore::new();
    let mut model = proxy_cnn(&mut store, input, 4, 4, &Backend::butterfly(4), 42);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        ..TrainConfig::default()
    };
    let report = train_classifier(&mut model, &mut store, &train, &test, &cfg);

    // 2. Freeze and serve under a pinned config: one request per batch on
    //    one worker, queue wide enough that nothing sheds — every serve
    //    counter and plan/* span count is then workload-determined.
    let plan = ExecPlan::compile(&model, &store, &[1, image, image], 8, 0, PlanPrecision::F64)
        .expect("proxy CNN lowers");
    let n_requests = test.len();
    let serve_cfg = ServeConfig {
        max_batch: 1,
        threads: 1,
        max_wait: Duration::from_micros(200),
        arrival_spacing: Duration::ZERO,
        queue_cap: 2 * n_requests,
        deadline: Duration::from_secs(3600),
    };
    let (_outputs, rep) = serve(&plan, test.images.as_slice(), n_requests, &serve_cfg);
    assert_eq!(
        rep.served, n_requests,
        "pinned session must serve everything"
    );

    // 3. One snapshot, split by audience.
    let snap = adept_telemetry::snapshot();
    if json {
        println!("{}", snap.to_json());
        return;
    }

    println!("profile_step: traced train -> compile -> serve pass");
    println!(
        "workload: {} train samples, {} serve requests, plan {} steps",
        train.len(),
        n_requests,
        plan.num_steps()
    );
    print!("{}", snap.render_deterministic());

    eprintln!(
        "test accuracy after 2 epochs: {:.1}%",
        report.test_accuracy * 100.0
    );
    eprintln!();
    eprintln!("== per-phase breakdown (wall-clock, this machine) ==");
    eprintln!(
        "{:>12} | {:>6} | {:>13} | {:>13}",
        "phase", "count", "total", "max"
    );
    for (label, path) in [
        ("stage", "mesh_build/stage"),
        ("record", "mesh_build/record"),
        ("splice", "mesh_build/splice"),
        ("glue-sweep", "backward/glue_sweep"),
        ("span-replay", "backward/span_replay"),
        ("optimizer", "train_step/optimizer"),
    ] {
        eprintln!("{}", phase_row(&snap, label, path));
    }
    eprintln!();
    eprint!("{}", snap.render_timing());
    eprintln!(
        "serve: {:.0} req/s | queue wait p50 {:.1} µs | exec p50 {:.1} µs",
        rep.req_per_sec,
        rep.queue_wait_p50.as_secs_f64() * 1e6,
        rep.exec_p50.as_secs_f64() * 1e6,
    );
}
