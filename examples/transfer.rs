//! Transferability: a topology searched once on the MNIST-like proxy task
//! is reused — without re-searching — for a different model (LeNet-5) on a
//! different dataset (FashionMNIST-like), the paper's Table 3 protocol.
//!
//! Run with: `cargo run --release --example transfer`

use adept_bench::{retrain, run_search, ModelKind, RetrainSettings, Scale};
use adept_datasets::DatasetKind;
use adept_nn::models::Backend;
use adept_photonics::Pdk;

fn main() {
    let k = 16usize;
    let mut settings = RetrainSettings::for_scale(Scale::Repro);
    settings.image_size = 12; // LeNet needs room to pool twice

    println!("searching a 16×16 PTC on the MNIST-like proxy (a2 window)…");
    let searched = run_search(k, Pdk::amf(), (672.0, 840.0), Scale::Repro, 21);
    let d = &searched.design;
    println!(
        "  found: #Blk={} #CR={} #DC={} footprint {:.0} kµm²\n",
        d.device_count.blocks, d.device_count.cr, d.device_count.dc, d.footprint_kum2
    );
    let backend = searched.backend();

    println!("transferring the frozen topology to LeNet-5 / FashionMNIST-like:");
    let adept_acc = retrain(
        ModelKind::LeNet5,
        DatasetKind::FashionMnistLike,
        &backend,
        &settings,
        1,
    )
    .accuracy_pct;
    let fft_acc = retrain(
        ModelKind::LeNet5,
        DatasetKind::FashionMnistLike,
        &Backend::butterfly(k),
        &settings,
        1,
    )
    .accuracy_pct;
    let mzi_acc = retrain(
        ModelKind::LeNet5,
        DatasetKind::FashionMnistLike,
        &Backend::Mzi { k },
        &settings,
        1,
    )
    .accuracy_pct;
    println!("  ADEPT (searched on proxy): {adept_acc:.1}%");
    println!("  FFT-ONN butterfly:         {fft_acc:.1}%");
    println!("  MZI-ONN (universal):       {mzi_acc:.1}%");
    println!("\nOnly the phases are retrained per task — the fabric (couplers and");
    println!("crossings) is fixed at tape-out, exactly the constraint the paper's");
    println!("search is designed around.");
}
