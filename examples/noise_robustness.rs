//! Noise robustness: train three PTC designs variation-aware, then sweep
//! Gaussian phase drift at evaluation time (the paper's Fig. 4 protocol,
//! miniaturized).
//!
//! Run with: `cargo run --release --example noise_robustness`

use adept_bench::{retrain, run_search, ModelKind, RetrainSettings, Scale};
use adept_datasets::DatasetKind;
use adept_nn::models::Backend;
use adept_photonics::Pdk;

fn main() {
    let k = 16usize;
    let settings = RetrainSettings::for_scale(Scale::Repro);
    let searched = run_search(k, Pdk::amf(), (1056.0, 1320.0), Scale::Repro, 11);
    let designs: Vec<(&str, Backend)> = vec![
        ("MZI-ONN", Backend::Mzi { k }),
        ("FFT-ONN", Backend::butterfly(k)),
        (
            "ADEPT",
            Backend::Topology {
                u: searched.design.topo_u.clone(),
                v: searched.design.topo_v.clone(),
            },
        ),
    ];
    println!("phase-noise robustness, proxy CNN on MNIST-like (variation-aware training)\n");
    print!("{:<8} | {:>7}", "design", "clean");
    let sigmas = [0.02, 0.05, 0.1];
    for s in sigmas {
        print!(" | σ={s:<4}");
    }
    println!("\n{}", "-".repeat(50));
    for (i, (name, backend)) in designs.iter().enumerate() {
        let mut out = retrain(
            ModelKind::Proxy,
            DatasetKind::MnistLike,
            backend,
            &settings,
            60 + i as u64,
        );
        print!("{:<8} | {:>6.1}%", name, out.accuracy_pct);
        for (si, &sigma) in sigmas.iter().enumerate() {
            let (mean, _) = out.model.noisy_accuracy(sigma, 3, 900 + si as u64);
            print!(" | {mean:>5.1}%");
        }
        println!();
    }
    println!("\nThe deep MZI mesh accumulates drift over O(K) stages and degrades");
    println!("fastest; the shallow searched mesh holds up alongside the butterfly.");
}
