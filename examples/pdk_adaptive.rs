//! PDK adaptivity: the same footprint *budget philosophy* on three foundry
//! kits produces structurally different designs — the search trades
//! couplers, crossings and depth against each kit's device sizes.
//!
//! Run with: `cargo run --release --example pdk_adaptive`

use adept::search::{search, AdeptConfig};
use adept_photonics::{block_count_bounds, Pdk};

fn main() {
    let k = 16usize;
    // One budget per kit, scaled to ~10 blocks of that kit's block cost so
    // the comparison is fair.
    let kits = vec![
        (Pdk::amf(), "cheap crossings (64 µm²)"),
        (Pdk::aim(), "huge crossings (4900 µm²)"),
        (
            Pdk::custom("lab-kit", 4000.0, 800.0, 1200.0),
            "user-defined kit",
        ),
    ];
    println!("PDK-adaptive search, {k}×{k} PTC\n");
    for (pdk, note) in kits {
        // Budget: roughly eight minimal blocks, 20% window.
        let f_block = k as f64 * pdk.ps_kum2() + pdk.dc_kum2();
        let f_max = 8.0 * f_block;
        let f_min = 0.8 * f_max;
        let bounds = block_count_bounds(k, &pdk, f_min, f_max);
        let mut cfg = AdeptConfig::quick(k, pdk.clone(), f_min, f_max);
        cfg.seed = 7;
        let out = search(&cfg);
        let d = &out.design;
        println!("{} — {note}", pdk);
        println!(
            "  window [{f_min:.0}, {f_max:.0}] kµm² → B ∈ [{}, {}] (Eq. 16)",
            bounds.b_min, bounds.b_max
        );
        println!(
            "  searched: #Blk={} #CR={} #DC={} footprint {:.0} kµm²",
            d.device_count.blocks, d.device_count.cr, d.device_count.dc, d.footprint_kum2
        );
        let cr_share = d.device_count.cr as f64 * pdk.cr_kum2() / d.footprint_kum2 * 100.0;
        println!("  crossings account for {cr_share:.1}% of the footprint\n");
    }
    println!("Expected shape: kits with expensive crossings keep #CR low; kits with");
    println!("cheap couplers place more of them within the same budget.");
}
