//! Serving demo: train a small photonic CNN, freeze it into a tape-free
//! `adept-infer` execution plan, then serve a synthetic request stream
//! through the batching runtime.
//!
//! Run with: `cargo run --release --example serve_demo`
//!
//! Deterministic results (accuracy, plan shape, per-class prediction
//! counts, output checksum) go to **stdout** — the CI determinism job
//! diffs it across `ONN_THREADS` legs. Timing (req/s, p50/p99, batch
//! count) is machine-dependent and goes to **stderr**.

use adept_bench as _;
use adept_datasets::{DatasetKind, SyntheticConfig};
use adept_infer::{serve, ExecPlan, ServeConfig};
use adept_nn::models::{proxy_cnn, Backend, InputShape};
use adept_nn::train::{evaluate, train_classifier, TrainConfig};
use adept_nn::ParamStore;

fn main() {
    // 1. Train briefly: butterfly-mesh proxy CNN on a synthetic task.
    let image = 10;
    let (classes, channels) = (4, 4);
    let (train, test) = SyntheticConfig::new(DatasetKind::MnistLike)
        .with_image_size(image)
        .with_classes(classes)
        .with_sizes(192, 96)
        .generate(42);
    let mut store = ParamStore::new();
    let mut model = proxy_cnn(
        &mut store,
        InputShape::new(1, image, image),
        channels,
        classes,
        &Backend::butterfly(4),
        42,
    );
    let cfg = TrainConfig {
        epochs: 4,
        batch_size: 32,
        ..TrainConfig::default()
    };
    let report = train_classifier(&mut model, &mut store, &train, &test, &cfg);
    println!(
        "trained proxy CNN: test accuracy {:.1}%",
        report.test_accuracy * 100.0
    );
    let tape_acc = evaluate(&mut model, &store, &test, 32);

    // 2. Freeze into a compiled plan (noise off, seed 0 — same weights the
    //    tape evaluation uses).
    let max_batch = 16;
    let plan = ExecPlan::compile(&model, &store, &[1, image, image], max_batch, 0)
        .expect("proxy CNN lowers");
    println!(
        "compiled plan: {} steps, {} -> {} features, max batch {}",
        plan.num_steps(),
        plan.input_elems(),
        plan.output_features(),
        plan.max_batch()
    );

    // 3. Serve a synthetic stream: every test image requested several
    //    times, coalesced into mini-batches across the pool workers.
    let rounds = 5;
    let n_requests = rounds * test.len();
    let in_elems = plan.input_elems();
    let mut inputs = vec![0.0; n_requests * in_elems];
    let src = test.images.as_slice();
    for r in 0..n_requests {
        let s = r % test.len();
        inputs[r * in_elems..(r + 1) * in_elems]
            .copy_from_slice(&src[s * in_elems..(s + 1) * in_elems]);
    }
    let (outputs, rep) = serve(&plan, &inputs, n_requests, &ServeConfig::auto());

    // 4. Deterministic digest of the served outputs: compiled predictions
    //    must reproduce the tape's accuracy, and the logits checksum must
    //    be bit-stable across thread counts and batch compositions.
    let out_f = plan.output_features();
    let mut correct = 0usize;
    let mut counts = vec![0usize; classes];
    for r in 0..n_requests {
        let logits = &outputs[r * out_f..(r + 1) * out_f];
        let pred = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        counts[pred] += 1;
        if pred == test.labels[r % test.len()] {
            correct += 1;
        }
    }
    let served_acc = correct as f64 / n_requests as f64;
    assert!(
        (served_acc - tape_acc).abs() < 1e-12,
        "served accuracy {served_acc} diverged from tape accuracy {tape_acc}"
    );
    println!(
        "served accuracy: {:.1}% over {} requests",
        served_acc * 100.0,
        n_requests
    );
    println!("prediction counts per class: {counts:?}");
    let checksum: f64 = outputs
        .iter()
        .enumerate()
        .map(|(i, &v)| v * (i % 7 + 1) as f64)
        .sum();
    println!("logits checksum: {checksum:.12e}");

    // 5. Timing (nondeterministic) to stderr.
    eprintln!(
        "served {} requests in {:?}: {:.0} req/s across {} batches (cap {}, {} workers)",
        rep.requests, rep.elapsed, rep.req_per_sec, rep.batches, rep.max_batch, rep.threads
    );
    eprintln!(
        "latency: p50 {:.1} µs, p99 {:.1} µs",
        rep.p50_latency.as_secs_f64() * 1e6,
        rep.p99_latency.as_secs_f64() * 1e6
    );
}
