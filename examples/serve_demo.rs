//! Serving demo: train a small photonic CNN, freeze it into a tape-free
//! `adept-infer` execution plan, then serve a synthetic request stream
//! through the batching runtime.
//!
//! ```text
//! cargo run --release --example serve_demo
//! cargo run --release --example serve_demo -- --device registry/devices/amf_butterfly8.toml
//! cargo run --release --example serve_demo -- --save-checkpoint /tmp/design.ckpt
//! cargo run --release --example serve_demo -- --checkpoint /tmp/design.ckpt
//! ```
//!
//! `--device <spec>` trains on the backend a registry device spec
//! describes (and serves under its fault scenario, if any).
//! `--save-checkpoint <path>` freezes the trained design to a versioned
//! checkpoint after training. `--checkpoint <path>` skips training
//! entirely: the design is rebuilt from the checkpoint in this process and
//! served — by construction its digest lines match the run that saved it,
//! bit for bit, at any `ONN_THREADS`.
//!
//! Deterministic results (accuracy, plan shape, per-class prediction
//! counts, output checksum) go to **stdout** — the CI determinism and
//! checkpoint jobs diff them across `ONN_THREADS` legs and across the
//! save/load process boundary. Timing (req/s, p50/p99, batch count) is
//! machine-dependent and goes to **stderr**.

use adept_bench as _;
use adept_datasets::{Dataset, DatasetKind, SyntheticConfig};
use adept_infer::{serve, ExecPlan, PlanPrecision, ServeConfig};
use adept_nn::models::{proxy_cnn, Backend, InputShape};
use adept_nn::train::{evaluate, train_classifier, TrainConfig};
use adept_nn::{save_backend, Checkpoint, ModelArch, ParamStore};
use adept_photonics::DeviceSpec;
use std::sync::Arc;

/// Value of `--<name> <value>` if present.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .map(|i| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        })
        .cloned()
}

fn synthetic(image: usize, classes: usize) -> (Dataset, Dataset) {
    SyntheticConfig::new(DatasetKind::MnistLike)
        .with_image_size(image)
        .with_classes(classes)
        .with_sizes(192, 96)
        .generate(42)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_batch = 16;
    // Serving precision: ONN_INFER_DTYPE (f64 default, validated parse).
    let precision = PlanPrecision::from_env();
    if precision != PlanPrecision::F64 {
        eprintln!(
            "serving precision: {} (ONN_INFER_DTYPE)",
            precision.dtype_name()
        );
    }

    let (plan, test, classes, tape_acc) = if let Some(path) = flag(&args, "--checkpoint") {
        // Rebuild the trained design from the checkpoint — no training.
        let (plan, ckpt) = match ExecPlan::compile_from_checkpoint(&path, max_batch, precision) {
            Ok(ok) => ok,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        let ModelArch::ProxyCnn { input, classes, .. } = ckpt.arch;
        let (_, test) = synthetic(input.height, classes);
        // The clean tape must still agree with a clean-compiled plan; with
        // stored faults the plan intentionally diverges from the tape.
        let tape_acc = if ckpt.fault.is_none() {
            let (mut model, store) = ckpt.instantiate().expect("checkpoint re-instantiates");
            Some(evaluate(&mut model, &store, &test, 32))
        } else {
            None
        };
        eprintln!("loaded checkpoint {path}: {} params", ckpt.param_count());
        (plan, test, classes, tape_acc)
    } else {
        // 1. Train briefly: proxy CNN on a synthetic task, on either the
        //    default butterfly mesh or a registry device's topology.
        let image = 10;
        let (classes, channels) = (4, 4);
        let device = flag(&args, "--device").map(|p| match DeviceSpec::load(&p) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: {p}: {e}");
                std::process::exit(1);
            }
        });
        let backend = device
            .as_ref()
            .map(Backend::from_device)
            .unwrap_or_else(|| Backend::butterfly(4));
        let faults = device.as_ref().and_then(|d| d.faults.clone());
        if let Some(d) = &device {
            println!("device: {} (pdk {})", d.name, d.pdk.name);
        }
        let (train, test) = synthetic(image, classes);
        let input = InputShape::new(1, image, image);
        let mut store = ParamStore::new();
        let mut model = proxy_cnn(&mut store, input, channels, classes, &backend, 42);
        let cfg = TrainConfig {
            epochs: 4,
            batch_size: 32,
            ..TrainConfig::default()
        };
        let report = train_classifier(&mut model, &mut store, &train, &test, &cfg);
        println!(
            "trained proxy CNN: test accuracy {:.1}%",
            report.test_accuracy * 100.0
        );
        let tape_acc = evaluate(&mut model, &store, &test, 32);

        // 2. Optionally freeze the trained design for other processes.
        if let Some(path) = flag(&args, "--save-checkpoint") {
            let arch = ModelArch::ProxyCnn {
                input,
                channels,
                classes,
                seed: 42,
            };
            let ckpt = Checkpoint::capture(arch, &backend, &model, &store, 0, faults.as_ref());
            if let Err(e) = save_backend(&path, &ckpt) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            eprintln!(
                "saved checkpoint {path}: {} params, {} scalars",
                ckpt.param_count(),
                ckpt.total_scalars()
            );
        }

        // 3. Freeze into a compiled plan (noise off, seed 0 — same weights
        //    the tape evaluation uses; device faults applied if declared).
        let plan = ExecPlan::compile_faulted(
            &model,
            &store,
            &[1, image, image],
            max_batch,
            0,
            faults.clone().map(Arc::new),
            precision,
        )
        .expect("proxy CNN lowers");
        let tape_acc = faults.is_none().then_some(tape_acc);
        (plan, test, classes, tape_acc)
    };

    println!(
        "compiled plan: {} steps, {} -> {} features, max batch {}",
        plan.num_steps(),
        plan.input_elems(),
        plan.output_features(),
        plan.max_batch()
    );

    // 4. Serve a synthetic stream: every test image requested several
    //    times, coalesced into mini-batches across the pool workers.
    let rounds = 5;
    let n_requests = rounds * test.len();
    let in_elems = plan.input_elems();
    let mut inputs = vec![0.0; n_requests * in_elems];
    let src = test.images.as_slice();
    for r in 0..n_requests {
        let s = r % test.len();
        inputs[r * in_elems..(r + 1) * in_elems]
            .copy_from_slice(&src[s * in_elems..(s + 1) * in_elems]);
    }
    let (outputs, rep) = serve(&plan, &inputs, n_requests, &ServeConfig::auto());

    // 5. Deterministic digest of the served outputs: compiled predictions
    //    must reproduce the tape's accuracy (when no faults are in play),
    //    and the logits checksum must be bit-stable across thread counts,
    //    batch compositions, and the checkpoint save/load boundary.
    let out_f = plan.output_features();
    let mut correct = 0usize;
    let mut counts = vec![0usize; classes];
    for r in 0..n_requests {
        let logits = &outputs[r * out_f..(r + 1) * out_f];
        let pred = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        counts[pred] += 1;
        if pred == test.labels[r % test.len()] {
            correct += 1;
        }
    }
    let served_acc = correct as f64 / n_requests as f64;
    // f32 plans intentionally diverge from the f64 tape by quantization;
    // the exact-accuracy cross-check only holds at full precision.
    if let Some(tape_acc) = tape_acc.filter(|_| precision == PlanPrecision::F64) {
        assert!(
            (served_acc - tape_acc).abs() < 1e-12,
            "served accuracy {served_acc} diverged from tape accuracy {tape_acc}"
        );
    }
    println!(
        "served accuracy: {:.1}% over {} requests",
        served_acc * 100.0,
        n_requests
    );
    println!("prediction counts per class: {counts:?}");
    let checksum: f64 = outputs
        .iter()
        .enumerate()
        .map(|(i, &v)| v * (i % 7 + 1) as f64)
        .sum();
    println!("logits checksum: {checksum:.12e}");

    // 6. Timing (nondeterministic) to stderr.
    eprintln!(
        "served {} requests in {:?}: {:.0} req/s across {} batches (cap {}, {} workers)",
        rep.requests, rep.elapsed, rep.req_per_sec, rep.batches, rep.max_batch, rep.threads
    );
    eprintln!(
        "latency: p50 {:.1} µs, p99 {:.1} µs",
        rep.p50_latency.as_secs_f64() * 1e6,
        rep.p99_latency.as_secs_f64() * 1e6
    );
    eprintln!(
        "  queue wait: p50 {:.1} µs, p99 {:.1} µs | exec: p50 {:.1} µs, p99 {:.1} µs",
        rep.queue_wait_p50.as_secs_f64() * 1e6,
        rep.queue_wait_p99.as_secs_f64() * 1e6,
        rep.exec_p50.as_secs_f64() * 1e6,
        rep.exec_p99.as_secs_f64() * 1e6
    );
}
