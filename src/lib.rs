//! Umbrella crate for the ADEPT (DAC 2022) reproduction workspace.
//!
//! The real functionality lives in the member crates; this crate re-exports
//! them so examples and integration tests can use one coherent namespace.
//!
//! # Architecture: the zero-copy tensor substrate
//!
//! Every layer of the stack runs on one storage model, defined in
//! [`tensor`]:
//!
//! * **Arc-backed, copy-on-write tensors** — `Tensor` is a contiguous
//!   window into an `Arc<Vec<f64>>`. Clones, reshapes, rows, batch items
//!   and autodiff tape reads are reference-count bumps; the first mutation
//!   of a shared tensor detaches it, so aliasing is never observable
//!   through writes.
//! * **Strided views** — `View` captures offset + per-axis strides.
//!   Slicing, transposition and `K×K` tile extraction are stride
//!   arithmetic; materialization is zero-copy for contiguous views.
//! * **Batched, strided kernels** — `batched_matmul_into` multiplies all
//!   PTC tiles of a layer in one sweep through `Tile` descriptors;
//!   `matmul_view` runs GEMMs straight off transposed/sliced views.
//!
//! The higher layers consume that substrate instead of copying:
//!
//! * [`autodiff`] stores tape values as shared tensors (`Var::value` is
//!   zero-copy), runs matmul backward passes off transposed views, and
//!   provides `stack`/`batched_matmul`/`assemble_tiles` nodes whose
//!   backward passes hand out storage-sharing windows.
//! * [`linalg`]'s `CMatrix` keeps its real/imaginary planes in one planar
//!   allocation, so plane extraction onto the tape is free and complex
//!   GEMMs reuse the threaded real kernel.
//! * [`nn`]'s `PtcWeight` (and [`adept`]'s search-time `SuperPtcWeight`)
//!   build all tile products as two batched GEMM sweeps plus one strided
//!   assembly node — the training and stage-2 search inner loops perform
//!   zero full-tensor clones for tile extraction and assembly.
//! * [`datasets`] hands out mini-batches as windows into the dataset
//!   allocation.
//!
//! The aliasing rules are spelled out on [`tensor::Tensor`]; the
//! `tests/zero_copy.rs` integration suite enforces the no-clone guarantees
//! with a counting allocator, and `crates/bench/benches/kernels.rs` tracks
//! the per-tile vs batched assembly speedup in `BENCH_kernels.json`.

pub use adept;
pub use adept_autodiff as autodiff;
pub use adept_datasets as datasets;
pub use adept_linalg as linalg;
pub use adept_nn as nn;
pub use adept_photonics as photonics;
pub use adept_tensor as tensor;
