//! Umbrella crate for the ADEPT (DAC 2022) reproduction workspace.
//!
//! The real functionality lives in the member crates; this crate re-exports
//! them so examples and integration tests can use one coherent namespace.

pub use adept;
pub use adept_autodiff as autodiff;
pub use adept_datasets as datasets;
pub use adept_linalg as linalg;
pub use adept_nn as nn;
pub use adept_photonics as photonics;
pub use adept_tensor as tensor;
